#include "src/signal/fft.h"

#include <cmath>
#include <stdexcept>

namespace blurnet::signal {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void fft_radix2(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * M_PI / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

// Bluestein's algorithm: express an arbitrary-length DFT as a convolution,
// evaluated with a power-of-two FFT.
void fft_bluestein(std::vector<Complex>& a, bool inverse) {
  const std::size_t n = a.size();
  std::size_t m = 1;
  while (m < 2 * n + 1) m <<= 1;

  // Chirp w[m] = exp(+i*pi*m^2/n) for the forward transform (the nk product
  // decomposes as (n^2 + k^2 - (k-n)^2)/2), conjugated for the inverse.
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double m = static_cast<double>(k);
    const double angle = M_PI * m * m / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), (inverse ? -1.0 : 1.0) * std::sin(angle));
  }

  std::vector<Complex> av(m, Complex(0, 0));
  std::vector<Complex> bv(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) av[k] = a[k] * std::conj(chirp[k]);
  bv[0] = chirp[0];
  for (std::size_t k = 1; k < n; ++k) bv[k] = bv[m - k] = chirp[k];

  fft_radix2(av, false);
  fft_radix2(bv, false);
  for (std::size_t k = 0; k < m; ++k) av[k] *= bv[k];
  fft_radix2(av, true);

  for (std::size_t k = 0; k < n; ++k) a[k] = av[k] * std::conj(chirp[k]);
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

}  // namespace

void fft_inplace(std::vector<Complex>& data, bool inverse) {
  if (data.empty()) return;
  if (is_power_of_two(data.size())) {
    fft_radix2(data, inverse);
  } else {
    fft_bluestein(data, inverse);
  }
}

std::vector<Complex> fft(const std::vector<Complex>& data) {
  auto out = data;
  fft_inplace(out, false);
  return out;
}

std::vector<Complex> ifft(const std::vector<Complex>& data) {
  auto out = data;
  fft_inplace(out, true);
  return out;
}

std::vector<Complex> fft_real(const std::vector<double>& data) {
  std::vector<Complex> complex_data(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) complex_data[i] = Complex(data[i], 0.0);
  fft_inplace(complex_data, false);
  return complex_data;
}

std::vector<Complex> fft2d(const std::vector<Complex>& data, int height, int width,
                           bool inverse) {
  if (static_cast<std::size_t>(height) * static_cast<std::size_t>(width) != data.size()) {
    throw std::invalid_argument("fft2d: size mismatch");
  }
  std::vector<Complex> out = data;
  // Rows.
  std::vector<Complex> row(static_cast<std::size_t>(width));
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) row[static_cast<std::size_t>(x)] = out[static_cast<std::size_t>(y) * width + x];
    fft_inplace(row, inverse);
    for (int x = 0; x < width; ++x) out[static_cast<std::size_t>(y) * width + x] = row[static_cast<std::size_t>(x)];
  }
  // Columns.
  std::vector<Complex> col(static_cast<std::size_t>(height));
  for (int x = 0; x < width; ++x) {
    for (int y = 0; y < height; ++y) col[static_cast<std::size_t>(y)] = out[static_cast<std::size_t>(y) * width + x];
    fft_inplace(col, inverse);
    for (int y = 0; y < height; ++y) out[static_cast<std::size_t>(y) * width + x] = col[static_cast<std::size_t>(y)];
  }
  return out;
}

std::vector<Complex> fft2d_real(const std::vector<double>& image, int height, int width) {
  std::vector<Complex> complex_image(image.size());
  for (std::size_t i = 0; i < image.size(); ++i) complex_image[i] = Complex(image[i], 0.0);
  return fft2d(complex_image, height, width, false);
}

}  // namespace blurnet::signal
