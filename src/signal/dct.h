// Orthonormal DCT-II / DCT-III (inverse) transforms, 1-D and separable 2-D.
// Used by the low-frequency adaptive attack (paper §V-A): the perturbation is
// projected onto the lowest dim×dim DCT coefficients before being applied.
#pragma once

#include <vector>

#include "src/tensor/tensor.h"

namespace blurnet::signal {

/// Orthonormal DCT-II of a length-n vector.
std::vector<double> dct1d(const std::vector<double>& x);
/// Orthonormal DCT-III (inverse of dct1d).
std::vector<double> idct1d(const std::vector<double>& x);

/// Separable 2-D DCT-II of a row-major height×width grid.
std::vector<double> dct2d(const std::vector<double>& x, int height, int width);
std::vector<double> idct2d(const std::vector<double>& x, int height, int width);

/// DCT-domain low-pass projection of each channel plane of an NCHW tensor:
/// keep only coefficients (u, v) with u < dim and v < dim, zero the rest,
/// and transform back. This is a linear, self-adjoint-free operator; its
/// adjoint equals applying the same projection (DCT orthonormality), which
/// the autograd wrapper relies on.
tensor::Tensor dct_lowpass_nchw(const tensor::Tensor& x, int dim);

/// Energy fraction of a plane's DCT spectrum inside the top-left dim×dim
/// block (diagnostic for the adaptive attack).
double dct_lowfreq_energy_fraction(const std::vector<double>& plane, int height,
                                   int width, int dim);

}  // namespace blurnet::signal
