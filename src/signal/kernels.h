// 2-D blur kernels ("standard blur kernels" of §III) and a fast non-autograd
// same-padding filter used by the input-blur and fixed feature-map-blur
// defenses and by the Fig. 2 analysis.
#pragma once

#include "src/tensor/tensor.h"

namespace blurnet::signal {

enum class KernelKind { kBox, kGaussian };

/// size×size normalized blur kernel (sums to 1).
tensor::Tensor make_blur_kernel(int size, KernelKind kind = KernelKind::kBox,
                                double sigma = -1.0);

/// Depthwise 2-D correlation with same padding: each channel of the NCHW
/// input is filtered independently with `kernel` (rank-2). Stride 1. Border
/// windows are renormalized by the in-bounds kernel mass, so a unit-mass blur
/// of a constant plane returns the constant everywhere (plain zero padding
/// would darken the edges).
tensor::Tensor filter2d_depthwise(const tensor::Tensor& x, const tensor::Tensor& kernel);

/// Per-channel kernels variant: `kernels` is [C, kh, kw]; channel c of the
/// input is filtered with kernels[c]. Used by the learnable depthwise layer's
/// inference path and by tests.
tensor::Tensor filter2d_per_channel(const tensor::Tensor& x, const tensor::Tensor& kernels);

}  // namespace blurnet::signal
