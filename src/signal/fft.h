// Fast Fourier Transform: iterative radix-2 Cooley–Tukey for power-of-two
// lengths, Bluestein's chirp-z algorithm for everything else, plus row/column
// 2-D transforms for the spectrum analyses in Figs. 1, 2 and 4 of the paper.
#pragma once

#include <complex>
#include <vector>

namespace blurnet::signal {

using Complex = std::complex<double>;

/// In-place forward/inverse FFT of arbitrary length (>= 1).
/// Inverse includes the 1/n normalization.
void fft_inplace(std::vector<Complex>& data, bool inverse);

/// Allocating helpers.
std::vector<Complex> fft(const std::vector<Complex>& data);
std::vector<Complex> ifft(const std::vector<Complex>& data);

/// Real-input convenience.
std::vector<Complex> fft_real(const std::vector<double>& data);

/// 2-D FFT over a row-major height x width grid.
std::vector<Complex> fft2d(const std::vector<Complex>& data, int height, int width,
                           bool inverse);

/// 2-D FFT of a real image; returns complex spectrum (row-major).
std::vector<Complex> fft2d_real(const std::vector<double>& image, int height, int width);

/// True when n is a power of two.
bool is_power_of_two(std::size_t n);

}  // namespace blurnet::signal
