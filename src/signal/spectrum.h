// Spectrum analysis used to reproduce Figs. 1, 2 and 4: log-shifted magnitude
// spectra, high-frequency energy ratios, and radial energy profiles of images
// and feature maps.
#pragma once

#include <vector>

#include "src/tensor/tensor.h"

namespace blurnet::signal {

/// fftshift a row-major plane: move the zero-frequency bin to the centre.
std::vector<double> fftshift2d(const std::vector<double>& plane, int height, int width);

/// log(1 + |FFT(plane)|), fft-shifted, normalized to [0,1] — exactly the
/// visualization the paper plots in Figs. 1/2/4.
std::vector<double> log_magnitude_spectrum(const std::vector<double>& plane, int height,
                                           int width);

/// Fraction of spectral energy (|FFT|^2, DC excluded) at radial frequency
/// above `cutoff_fraction` of Nyquist. The paper's "high frequency" summary.
double high_frequency_energy_ratio(const std::vector<double>& plane, int height,
                                   int width, double cutoff_fraction = 0.5);

/// Mean |FFT|^2 per radial frequency bin (DC in bin 0). Length = number of bins.
std::vector<double> radial_energy_profile(const std::vector<double>& plane, int height,
                                          int width, int bins);

/// L2 distance between the log-magnitude spectra of two planes, normalized by
/// the norm of the first (Fig. 1's "the spectra look the same" quantified).
double spectral_distance(const std::vector<double>& a, const std::vector<double>& b,
                         int height, int width);

/// Extract channel `c` of image `n` from an NCHW tensor as a double plane.
std::vector<double> extract_plane(const tensor::Tensor& x, std::int64_t n, std::int64_t c);

/// Per-channel high-frequency energy ratios of an NCHW tensor (image n).
std::vector<double> per_channel_hf_ratio(const tensor::Tensor& x, std::int64_t n,
                                         double cutoff_fraction = 0.5);

}  // namespace blurnet::signal
