#include "src/signal/dct.h"

#include <cmath>
#include <stdexcept>

namespace blurnet::signal {

namespace {

// Direct O(n^2) orthonormal transforms. The planes involved are <= 32x32, so
// the matrix form is both fast enough and trivially correct.
void dct1d_into(const double* x, double* out, int n, bool inverse) {
  const double scale0 = std::sqrt(1.0 / n);
  const double scale = std::sqrt(2.0 / n);
  if (!inverse) {
    for (int k = 0; k < n; ++k) {
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        acc += x[i] * std::cos(M_PI * (2.0 * i + 1.0) * k / (2.0 * n));
      }
      out[k] = (k == 0 ? scale0 : scale) * acc;
    }
  } else {
    for (int i = 0; i < n; ++i) {
      double acc = scale0 * x[0];
      for (int k = 1; k < n; ++k) {
        acc += scale * x[k] * std::cos(M_PI * (2.0 * i + 1.0) * k / (2.0 * n));
      }
      out[i] = acc;
    }
  }
}

std::vector<double> transform2d(const std::vector<double>& x, int height, int width,
                                bool inverse) {
  if (static_cast<std::size_t>(height) * static_cast<std::size_t>(width) != x.size()) {
    throw std::invalid_argument("dct2d: size mismatch");
  }
  std::vector<double> tmp(x.size());
  std::vector<double> out(x.size());
  std::vector<double> line(static_cast<std::size_t>(std::max(height, width)));
  // Rows.
  for (int y = 0; y < height; ++y) {
    dct1d_into(x.data() + static_cast<std::size_t>(y) * width,
               tmp.data() + static_cast<std::size_t>(y) * width, width, inverse);
  }
  // Columns.
  std::vector<double> col(static_cast<std::size_t>(height));
  std::vector<double> col_out(static_cast<std::size_t>(height));
  for (int xcol = 0; xcol < width; ++xcol) {
    for (int y = 0; y < height; ++y) col[static_cast<std::size_t>(y)] = tmp[static_cast<std::size_t>(y) * width + xcol];
    dct1d_into(col.data(), col_out.data(), height, inverse);
    for (int y = 0; y < height; ++y) out[static_cast<std::size_t>(y) * width + xcol] = col_out[static_cast<std::size_t>(y)];
  }
  (void)line;
  return out;
}

}  // namespace

std::vector<double> dct1d(const std::vector<double>& x) {
  std::vector<double> out(x.size());
  dct1d_into(x.data(), out.data(), static_cast<int>(x.size()), false);
  return out;
}

std::vector<double> idct1d(const std::vector<double>& x) {
  std::vector<double> out(x.size());
  dct1d_into(x.data(), out.data(), static_cast<int>(x.size()), true);
  return out;
}

std::vector<double> dct2d(const std::vector<double>& x, int height, int width) {
  return transform2d(x, height, width, false);
}

std::vector<double> idct2d(const std::vector<double>& x, int height, int width) {
  return transform2d(x, height, width, true);
}

tensor::Tensor dct_lowpass_nchw(const tensor::Tensor& x, int dim) {
  if (x.rank() != 4) throw std::invalid_argument("dct_lowpass_nchw: expected NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  const int h = static_cast<int>(x.dim(2));
  const int w = static_cast<int>(x.dim(3));
  tensor::Tensor out(x.shape());
  std::vector<double> plane(static_cast<std::size_t>(h) * w);
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const float* src = x.data() + (in * c + ic) * h * w;
      for (std::size_t i = 0; i < plane.size(); ++i) plane[i] = src[i];
      auto coeffs = dct2d(plane, h, w);
      for (int y = 0; y < h; ++y) {
        for (int xx = 0; xx < w; ++xx) {
          if (y >= dim || xx >= dim) coeffs[static_cast<std::size_t>(y) * w + xx] = 0.0;
        }
      }
      const auto filtered = idct2d(coeffs, h, w);
      float* dst = out.data() + (in * c + ic) * h * w;
      for (std::size_t i = 0; i < plane.size(); ++i) dst[i] = static_cast<float>(filtered[i]);
    }
  }
  return out;
}

double dct_lowfreq_energy_fraction(const std::vector<double>& plane, int height,
                                   int width, int dim) {
  const auto coeffs = dct2d(plane, height, width);
  double total = 0.0, low = 0.0;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double e = coeffs[static_cast<std::size_t>(y) * width + x] *
                       coeffs[static_cast<std::size_t>(y) * width + x];
      total += e;
      if (y < dim && x < dim) low += e;
    }
  }
  return total > 0 ? low / total : 0.0;
}

}  // namespace blurnet::signal
