#include "src/signal/kernels.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/kernels/dispatch.h"
#include "src/linalg/operators.h"
#include "src/util/parallel.h"

namespace blurnet::signal {

tensor::Tensor make_blur_kernel(int size, KernelKind kind, double sigma) {
  if (size <= 0 || size % 2 == 0) {
    throw std::invalid_argument("make_blur_kernel: size must be odd and positive");
  }
  const auto taps = kind == KernelKind::kBox ? linalg::box_kernel_1d(size)
                                             : linalg::gaussian_kernel_1d(size, sigma);
  tensor::Tensor kernel(tensor::Shape::mat(size, size));
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      kernel.at2(y, x) = static_cast<float>(taps[static_cast<std::size_t>(y)] *
                                            taps[static_cast<std::size_t>(x)]);
    }
  }
  return kernel;
}

namespace {

// One output pixel whose kernel window may hang off the plane. The window is
// renormalized by the in-bounds kernel mass so a blur of a constant plane
// stays constant at the borders instead of darkening (the zero-padding taps
// otherwise swallow part of a unit-mass kernel). Renormalization only applies
// when both masses are meaningfully nonzero: a ~zero-sum kernel (e.g. a
// Laplacian) must be left as computed — scaling by total/inbounds would
// annihilate its border response — and a ~zero in-bounds mass would explode.
void filter_border_pixel(const float* src, float* dst, std::int64_t h, std::int64_t w,
                         const float* kernel, int kh, int kw, double total_mass,
                         std::int64_t y, std::int64_t x) {
  const int pad_h = kh / 2;
  const int pad_w = kw / 2;
  double acc = 0.0;
  double inbounds_mass = 0.0;
  for (int fy = 0; fy < kh; ++fy) {
    const std::int64_t sy = y + fy - pad_h;
    if (sy < 0 || sy >= h) continue;
    for (int fx = 0; fx < kw; ++fx) {
      const std::int64_t sx = x + fx - pad_w;
      if (sx < 0 || sx >= w) continue;
      const double tap = kernel[fy * kw + fx];
      acc += tap * src[sy * w + sx];
      inbounds_mass += tap;
    }
  }
  if (std::fabs(total_mass) > 1e-12 && std::fabs(inbounds_mass) > 1e-12) {
    acc *= total_mass / inbounds_mass;
  }
  dst[y * w + x] = static_cast<float>(acc);
}

void filter_plane(const float* src, float* dst, std::int64_t h, std::int64_t w,
                  const float* kernel, int kh, int kw) {
  const int pad_h = kh / 2;
  const int pad_w = kw / 2;
  double total_mass = 0.0;
  for (int i = 0; i < kh * kw; ++i) total_mass += kernel[i];

  // Interior pass: every tap is in bounds, no renormalization bookkeeping.
  // The per-row tap loop is kernel-dispatched (scalar and SIMD targets share
  // the double accumulator and ascending (fy, fx) tap order, so the result
  // is bitwise identical across targets).
  const std::int64_t interior_w = w - 2 * pad_w;
  if (interior_w > 0) {
    const kernels::TapRowFn taps =
        kernels::tap_row(util::active_kernel_target());
    for (std::int64_t y = pad_h; y < h - pad_h; ++y) {
      taps(src + (y - pad_h) * w, w, kernel, kh, kw, dst + y * w + pad_w,
           interior_w);
    }
  }

  // Border pass: the top/bottom bands plus the left/right edges of the
  // interior rows (covers everything when the kernel exceeds the plane).
  for (std::int64_t y = 0; y < h; ++y) {
    const bool full_row = y < pad_h || y >= h - pad_h;
    if (full_row) {
      for (std::int64_t x = 0; x < w; ++x) {
        filter_border_pixel(src, dst, h, w, kernel, kh, kw, total_mass, y, x);
      }
    } else {
      for (std::int64_t x = 0; x < std::min<std::int64_t>(pad_w, w); ++x) {
        filter_border_pixel(src, dst, h, w, kernel, kh, kw, total_mass, y, x);
      }
      for (std::int64_t x = std::max<std::int64_t>(w - pad_w, pad_w); x < w; ++x) {
        filter_border_pixel(src, dst, h, w, kernel, kh, kw, total_mass, y, x);
      }
    }
  }
}

}  // namespace

tensor::Tensor filter2d_depthwise(const tensor::Tensor& x, const tensor::Tensor& kernel) {
  if (x.rank() != 4) throw std::invalid_argument("filter2d_depthwise: expected NCHW");
  if (kernel.rank() != 2) throw std::invalid_argument("filter2d_depthwise: kernel must be rank-2");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int kh = static_cast<int>(kernel.dim(0));
  const int kw = static_cast<int>(kernel.dim(1));
  tensor::Tensor out(x.shape());
  util::parallel_for(n * c, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      filter_plane(x.data() + p * h * w, out.data() + p * h * w, h, w, kernel.data(), kh, kw);
    }
  }, /*min_chunk=*/1);
  return out;
}

tensor::Tensor filter2d_per_channel(const tensor::Tensor& x, const tensor::Tensor& kernels) {
  if (x.rank() != 4) throw std::invalid_argument("filter2d_per_channel: expected NCHW");
  if (kernels.rank() != 3 || kernels.dim(0) != x.dim(1)) {
    throw std::invalid_argument("filter2d_per_channel: kernels must be [C, kh, kw]");
  }
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int kh = static_cast<int>(kernels.dim(1));
  const int kw = static_cast<int>(kernels.dim(2));
  tensor::Tensor out(x.shape());
  util::parallel_for(n * c, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t ic = p % c;
      filter_plane(x.data() + p * h * w, out.data() + p * h * w, h, w,
                   kernels.data() + ic * kh * kw, kh, kw);
    }
  }, /*min_chunk=*/1);
  return out;
}

}  // namespace blurnet::signal
