#include "src/signal/kernels.h"

#include <stdexcept>

#include "src/linalg/operators.h"
#include "src/util/parallel.h"

namespace blurnet::signal {

tensor::Tensor make_blur_kernel(int size, KernelKind kind, double sigma) {
  if (size <= 0 || size % 2 == 0) {
    throw std::invalid_argument("make_blur_kernel: size must be odd and positive");
  }
  const auto taps = kind == KernelKind::kBox ? linalg::box_kernel_1d(size)
                                             : linalg::gaussian_kernel_1d(size, sigma);
  tensor::Tensor kernel(tensor::Shape::mat(size, size));
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      kernel.at2(y, x) = static_cast<float>(taps[static_cast<std::size_t>(y)] *
                                            taps[static_cast<std::size_t>(x)]);
    }
  }
  return kernel;
}

namespace {

void filter_plane(const float* src, float* dst, std::int64_t h, std::int64_t w,
                  const float* kernel, int kh, int kw) {
  const int pad_h = kh / 2;
  const int pad_w = kw / 2;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int fy = 0; fy < kh; ++fy) {
        const std::int64_t sy = y + fy - pad_h;
        if (sy < 0 || sy >= h) continue;
        for (int fx = 0; fx < kw; ++fx) {
          const std::int64_t sx = x + fx - pad_w;
          if (sx < 0 || sx >= w) continue;
          acc += static_cast<double>(kernel[fy * kw + fx]) * src[sy * w + sx];
        }
      }
      dst[y * w + x] = static_cast<float>(acc);
    }
  }
}

}  // namespace

tensor::Tensor filter2d_depthwise(const tensor::Tensor& x, const tensor::Tensor& kernel) {
  if (x.rank() != 4) throw std::invalid_argument("filter2d_depthwise: expected NCHW");
  if (kernel.rank() != 2) throw std::invalid_argument("filter2d_depthwise: kernel must be rank-2");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int kh = static_cast<int>(kernel.dim(0));
  const int kw = static_cast<int>(kernel.dim(1));
  tensor::Tensor out(x.shape());
  util::parallel_for(n * c, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      filter_plane(x.data() + p * h * w, out.data() + p * h * w, h, w, kernel.data(), kh, kw);
    }
  }, /*min_chunk=*/1);
  return out;
}

tensor::Tensor filter2d_per_channel(const tensor::Tensor& x, const tensor::Tensor& kernels) {
  if (x.rank() != 4) throw std::invalid_argument("filter2d_per_channel: expected NCHW");
  if (kernels.rank() != 3 || kernels.dim(0) != x.dim(1)) {
    throw std::invalid_argument("filter2d_per_channel: kernels must be [C, kh, kw]");
  }
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int kh = static_cast<int>(kernels.dim(1));
  const int kw = static_cast<int>(kernels.dim(2));
  tensor::Tensor out(x.shape());
  util::parallel_for(n * c, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t ic = p % c;
      filter_plane(x.data() + p * h * w, out.data() + p * h * w, h, w,
                   kernels.data() + ic * kh * kw, kh, kw);
    }
  }, /*min_chunk=*/1);
  return out;
}

}  // namespace blurnet::signal
