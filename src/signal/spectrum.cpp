#include "src/signal/spectrum.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/signal/fft.h"

namespace blurnet::signal {

std::vector<double> fftshift2d(const std::vector<double>& plane, int height, int width) {
  std::vector<double> out(plane.size());
  const int half_h = height / 2;
  const int half_w = width / 2;
  for (int y = 0; y < height; ++y) {
    const int sy = (y + half_h) % height;
    for (int x = 0; x < width; ++x) {
      const int sx = (x + half_w) % width;
      out[static_cast<std::size_t>(y) * width + x] =
          plane[static_cast<std::size_t>(sy) * width + sx];
    }
  }
  return out;
}

std::vector<double> log_magnitude_spectrum(const std::vector<double>& plane, int height,
                                           int width) {
  const auto spectrum = fft2d_real(plane, height, width);
  std::vector<double> mag(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) mag[i] = std::log1p(std::abs(spectrum[i]));
  auto shifted = fftshift2d(mag, height, width);
  const double mx = *std::max_element(shifted.begin(), shifted.end());
  if (mx > 0) {
    for (auto& v : shifted) v /= mx;
  }
  return shifted;
}

double high_frequency_energy_ratio(const std::vector<double>& plane, int height,
                                   int width, double cutoff_fraction) {
  const auto spectrum = fft2d_real(plane, height, width);
  double total = 0.0, high = 0.0;
  for (int y = 0; y < height; ++y) {
    // Signed frequency index: bins above h/2 are negative frequencies.
    const double fy = (y <= height / 2 ? y : y - height) / (height / 2.0);
    for (int x = 0; x < width; ++x) {
      if (y == 0 && x == 0) continue;  // exclude DC
      const double fx = (x <= width / 2 ? x : x - width) / (width / 2.0);
      const double radius = std::sqrt(fx * fx + fy * fy);
      const double energy = std::norm(spectrum[static_cast<std::size_t>(y) * width + x]);
      total += energy;
      if (radius >= cutoff_fraction) high += energy;
    }
  }
  return total > 0 ? high / total : 0.0;
}

std::vector<double> radial_energy_profile(const std::vector<double>& plane, int height,
                                          int width, int bins) {
  if (bins <= 0) throw std::invalid_argument("radial_energy_profile: bins must be positive");
  const auto spectrum = fft2d_real(plane, height, width);
  std::vector<double> energy(static_cast<std::size_t>(bins), 0.0);
  std::vector<int> counts(static_cast<std::size_t>(bins), 0);
  for (int y = 0; y < height; ++y) {
    const double fy = (y <= height / 2 ? y : y - height) / (height / 2.0);
    for (int x = 0; x < width; ++x) {
      const double fx = (x <= width / 2 ? x : x - width) / (width / 2.0);
      const double radius = std::min(1.0, std::sqrt((fx * fx + fy * fy) / 2.0));
      int bin = static_cast<int>(radius * (bins - 1) + 0.5);
      bin = std::clamp(bin, 0, bins - 1);
      energy[static_cast<std::size_t>(bin)] +=
          std::norm(spectrum[static_cast<std::size_t>(y) * width + x]);
      counts[static_cast<std::size_t>(bin)] += 1;
    }
  }
  for (int b = 0; b < bins; ++b) {
    if (counts[static_cast<std::size_t>(b)] > 0) {
      energy[static_cast<std::size_t>(b)] /= counts[static_cast<std::size_t>(b)];
    }
  }
  return energy;
}

double spectral_distance(const std::vector<double>& a, const std::vector<double>& b,
                         int height, int width) {
  const auto sa = log_magnitude_spectrum(a, height, width);
  const auto sb = log_magnitude_spectrum(b, height, width);
  double diff = 0.0, base = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    const double d = sa[i] - sb[i];
    diff += d * d;
    base += sa[i] * sa[i];
  }
  return base > 0 ? std::sqrt(diff / base) : std::sqrt(diff);
}

std::vector<double> extract_plane(const tensor::Tensor& x, std::int64_t n, std::int64_t c) {
  if (x.rank() != 4) throw std::invalid_argument("extract_plane: expected NCHW");
  const std::int64_t h = x.dim(2), w = x.dim(3);
  std::vector<double> plane(static_cast<std::size_t>(h * w));
  const float* src = x.data() + (n * x.dim(1) + c) * h * w;
  for (std::size_t i = 0; i < plane.size(); ++i) plane[i] = src[i];
  return plane;
}

std::vector<double> per_channel_hf_ratio(const tensor::Tensor& x, std::int64_t n,
                                         double cutoff_fraction) {
  const int h = static_cast<int>(x.dim(2));
  const int w = static_cast<int>(x.dim(3));
  std::vector<double> out(static_cast<std::size_t>(x.dim(1)));
  for (std::int64_t c = 0; c < x.dim(1); ++c) {
    out[static_cast<std::size_t>(c)] =
        high_frequency_energy_ratio(extract_plane(x, n, c), h, w, cutoff_fraction);
  }
  return out;
}

}  // namespace blurnet::signal
