#include "src/attack/pgd.h"

#include <algorithm>
#include <stdexcept>

#include "src/autograd/ops.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace blurnet::attack {

using autograd::Variable;
using tensor::Tensor;

namespace {

Tensor project_linf(const Tensor& adv, const Tensor& natural, double epsilon) {
  Tensor out(adv.shape());
  const float eps = static_cast<float>(epsilon);
  const float* pa = adv.data();
  const float* pn = natural.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    const float lo = std::max(0.0f, pn[i] - eps);
    const float hi = std::min(1.0f, pn[i] + eps);
    po[i] = std::clamp(pa[i], lo, hi);
  }
  return out;
}

}  // namespace

AttackResult pgd_attack(const VictimHandle& victim, const Tensor& images,
                        const std::vector<int>& labels, const PgdConfig& config) {
  const nn::LisaCnn& model = victim.gradient_model();
  if (images.rank() != 4) throw std::invalid_argument("pgd_attack: images must be NCHW");
  if (static_cast<std::int64_t>(labels.size()) != images.dim(0)) {
    throw std::invalid_argument("pgd_attack: label count mismatch");
  }

  util::Rng rng(config.seed);
  Tensor x_adv = images.clone();
  if (config.random_start) {
    float* p = x_adv.data();
    for (std::int64_t i = 0; i < x_adv.numel(); ++i) {
      p[i] = std::clamp(
          p[i] + static_cast<float>(rng.uniform(-config.epsilon, config.epsilon)), 0.0f,
          1.0f);
    }
  }

  const std::vector<int> attack_labels =
      config.targeted ? std::vector<int>(labels.size(), config.target_class) : labels;
  // Untargeted PGD ascends the true-label loss; targeted PGD descends the
  // target-label loss.
  const float direction = config.targeted ? -1.0f : 1.0f;

  double final_loss = 0.0;
  for (int step = 0; step < config.steps; ++step) {
    Variable x = Variable::leaf(x_adv.clone(), /*requires_grad=*/true);
    Variable loss = autograd::softmax_cross_entropy(model.forward(x).logits, attack_labels);
    autograd::backward(loss);
    final_loss = loss.scalar_value();
    const Tensor step_dir = tensor::sign(x.grad());
    x_adv.add_scaled_(step_dir, direction * static_cast<float>(config.step_size));
    x_adv = project_linf(x_adv, images, config.epsilon);
  }

  AttackResult result;
  result.adversarial = x_adv;
  result.perturbation = tensor::sub(x_adv, images);
  result.clean_pred = victim.classify(images);
  result.adv_pred = victim.classify(x_adv);
  result.final_loss = final_loss;
  return result;
}

AttackResult fgsm_attack(const VictimHandle& victim, const Tensor& images,
                         const std::vector<int>& labels, double epsilon) {
  PgdConfig config;
  config.epsilon = epsilon;
  config.step_size = epsilon;
  config.steps = 1;
  config.random_start = false;
  return pgd_attack(victim, images, labels, config);
}

}  // namespace blurnet::attack
