#include "src/attack/pgd.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "src/attack/eot.h"
#include "src/autograd/ops.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace blurnet::attack {

using autograd::Variable;
using tensor::Tensor;

namespace {

// Salts the EOT pose streams away from the random-start noise stream, which
// consumes util::Rng(config.seed) directly.
constexpr std::uint64_t kPgdEotSeedSalt = 0x706f7365626f7353ULL;

Tensor project_linf(const Tensor& adv, const Tensor& natural, double epsilon) {
  Tensor out(adv.shape());
  const float eps = static_cast<float>(epsilon);
  const float* pa = adv.data();
  const float* pn = natural.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    const float lo = std::max(0.0f, pn[i] - eps);
    const float hi = std::min(1.0f, pn[i] + eps);
    po[i] = std::clamp(pa[i], lo, hi);
  }
  return out;
}

}  // namespace

void PgdConfig::validate() const {
  using namespace config_validation;
  require_positive("PgdConfig", steps, "steps");
  require_positive("PgdConfig", eot_poses, "eot_poses");
  require_positive("PgdConfig", epsilon, "epsilon");
  require_positive("PgdConfig", step_size, "step_size");
  require_non_negative("PgdConfig", max_rotation, "max_rotation");
  require_non_negative("PgdConfig", max_shift, "max_shift");
  require_scale_interval("PgdConfig", min_scale, max_scale);
}

AttackResult pgd_attack(const VictimHandle& victim, const Tensor& images,
                        const std::vector<int>& labels, const PgdConfig& config) {
  config.validate();
  const nn::LisaCnn& model = victim.gradient_model();
  if (images.rank() != 4) throw std::invalid_argument("pgd_attack: images must be NCHW");
  if (static_cast<std::int64_t>(labels.size()) != images.dim(0)) {
    throw std::invalid_argument("pgd_attack: label count mismatch");
  }

  util::Rng rng(config.seed);
  Tensor x_adv = images.clone();
  if (config.random_start) {
    float* p = x_adv.data();
    for (std::int64_t i = 0; i < x_adv.numel(); ++i) {
      p[i] = std::clamp(
          p[i] + static_cast<float>(rng.uniform(-config.epsilon, config.epsilon)), 0.0f,
          1.0f);
    }
  }

  const std::vector<int> attack_labels =
      config.targeted ? std::vector<int>(labels.size(), config.target_class) : labels;
  // Untargeted PGD ascends the true-label loss; targeted PGD descends the
  // target-label loss.
  const float direction = config.targeted ? -1.0f : 1.0f;

  // Pose-batched EOT (K > 1): every step forwards all (image, pose) pairs in
  // one [n*K] graph and averages the loss over poses. K = 1 keeps the
  // historical non-EOT path — no tiling, no warp node.
  const int poses = config.eot_poses;
  const std::int64_t n = images.dim(0);
  const int h = static_cast<int>(images.dim(2));
  const int w = static_cast<int>(images.dim(3));
  EotSampler sampler(config.seed ^ kPgdEotSeedSalt, poses,
                     EotPoseRange{config.max_rotation, config.min_scale, config.max_scale,
                                  config.max_shift});
  // Pose-major label tiling mirrors repeat_batch: block j is the whole batch.
  std::vector<int> tiled_labels;
  tiled_labels.reserve(attack_labels.size() * static_cast<std::size_t>(poses));
  for (int j = 0; j < poses; ++j) {
    tiled_labels.insert(tiled_labels.end(), attack_labels.begin(), attack_labels.end());
  }

  double final_loss = 0.0;
  for (int step = 0; step < config.steps; ++step) {
    Variable x = Variable::leaf(x_adv.clone(), /*requires_grad=*/true);
    Variable input = x;
    if (poses > 1) {
      const auto step_poses = sampler.sample_step(h, w);
      std::vector<autograd::Affine2D> row_transforms;
      row_transforms.reserve(static_cast<std::size_t>(n) * poses);
      for (int j = 0; j < poses; ++j) {
        row_transforms.insert(row_transforms.end(), static_cast<std::size_t>(n),
                              step_poses[static_cast<std::size_t>(j)]);
      }
      input = autograd::affine_warp(autograd::repeat_batch(x, poses), row_transforms);
    }
    if (config.bpda && victim.has_input_transform()) {
      // BPDA straight-through: the model input is transformed exactly as the
      // serving pipeline would transform it; gradients skip the transform.
      input = autograd::straight_through(input, victim.transform_input(input.value()));
    }
    Variable loss = autograd::softmax_cross_entropy(model.forward(input).logits,
                                                    poses > 1 ? tiled_labels : attack_labels);
    autograd::backward(loss);
    final_loss = loss.scalar_value();
    const Tensor step_dir = tensor::sign(x.grad());
    x_adv.add_scaled_(step_dir, direction * static_cast<float>(config.step_size));
    x_adv = project_linf(x_adv, images, config.epsilon);
  }

  AttackResult result;
  result.adversarial = x_adv;
  result.perturbation = tensor::sub(x_adv, images);
  result.clean_pred = victim.classify(images);
  result.adv_pred = victim.classify(x_adv);
  result.final_loss = final_loss;
  return result;
}

AttackResult fgsm_attack(const VictimHandle& victim, const Tensor& images,
                         const std::vector<int>& labels, double epsilon) {
  PgdConfig config;
  config.epsilon = epsilon;
  config.step_size = epsilon;
  config.steps = 1;
  config.random_start = false;
  return pgd_attack(victim, images, labels, config);
}

}  // namespace blurnet::attack
