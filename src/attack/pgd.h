// Projected gradient descent (Madry et al.) and FGSM under the L∞ threat
// model. Used for Table IV (every BlurNet defense falls to an unrestricted
// pixel adversary) and for adversarial training (Table II/V baselines).
#pragma once

#include <cstdint>
#include <vector>

#include "src/attack/threat_model.h"
#include "src/nn/lisa_cnn.h"

namespace blurnet::attack {

struct PgdConfig {
  double epsilon = 8.0 / 255.0;  // L∞ ball radius
  double step_size = 0.01;       // α
  int steps = 10;
  bool targeted = false;
  int target_class = 0;   // used when targeted
  bool random_start = true;
  std::uint64_t seed = 3;
};

/// Untargeted (maximize loss on true labels) or targeted PGD. Gradients go
/// through `victim.gradient_model()`; the final clean/adversarial predictions
/// through `victim.classify()` (a plain nn::LisaCnn converts implicitly).
AttackResult pgd_attack(const VictimHandle& victim, const tensor::Tensor& images,
                        const std::vector<int>& labels, const PgdConfig& config);

/// Single-step FGSM (equivalent to PGD with steps=1, step=epsilon, no restart).
AttackResult fgsm_attack(const VictimHandle& victim, const tensor::Tensor& images,
                         const std::vector<int>& labels, double epsilon);

}  // namespace blurnet::attack
