// Projected gradient descent (Madry et al.) and FGSM under the L∞ threat
// model. Used for Table IV (every BlurNet defense falls to an unrestricted
// pixel adversary) and for adversarial training (Table II/V baselines).
#pragma once

#include <cstdint>
#include <vector>

#include "src/attack/threat_model.h"
#include "src/nn/lisa_cnn.h"

namespace blurnet::attack {

struct PgdConfig {
  double epsilon = 8.0 / 255.0;  // L∞ ball radius
  double step_size = 0.01;       // α
  int steps = 10;
  bool targeted = false;
  int target_class = 0;   // used when targeted
  bool random_start = true;
  std::uint64_t seed = 3;

  // Pose-batched EOT, off by default (the unrestricted pixel adversary of
  // Table IV needs no alignment robustness). With eot_poses > 1 every step
  // tiles the batch to [n*K, C, H, W], warps pose block j with a sampled
  // alignment (attack::EotSampler on a salted stream, so the pose draws never
  // collide with the random-start noise), and averages the loss over poses —
  // the gradient of the expectation over transformations. eot_poses = 1 is
  // the historical non-EOT PGD, bitwise.
  int eot_poses = 1;
  double max_rotation = 0.25;
  double min_scale = 0.75, max_scale = 1.10;
  double max_shift = 2.5;

  /// BPDA straight-through against input-transform victims (see
  /// Rp2Config::bpda): each step's forward applies the victim's transform to
  /// the model input, the backward treats it as the identity. false crafts
  /// obliviously against the bare model. No effect on transform-free victims.
  bool bpda = true;

  /// Reject malformed configurations with a descriptive
  /// std::invalid_argument (the serving engine's input-validation style):
  /// positive epsilon / step_size / steps / eot_poses, non-negative
  /// max_rotation / max_shift, min_scale <= max_scale. Called by
  /// pgd_attack() up front.
  void validate() const;
};

/// Untargeted (maximize loss on true labels) or targeted PGD. Gradients go
/// through `victim.gradient_model()`; the final clean/adversarial predictions
/// through `victim.classify()` (a plain nn::LisaCnn converts implicitly).
AttackResult pgd_attack(const VictimHandle& victim, const tensor::Tensor& images,
                        const std::vector<int>& labels, const PgdConfig& config);

/// Single-step FGSM (equivalent to PGD with steps=1, step=epsilon, no restart).
AttackResult fgsm_attack(const VictimHandle& victim, const tensor::Tensor& images,
                         const std::vector<int>& labels, double epsilon);

}  // namespace blurnet::attack
