// Robust Physical Perturbations (RP2, Eykholt et al. 2017) and its adaptive
// variants from the paper:
//
//   base (Eq. 1):        argmin_δ λ‖M_x·δ‖_p + NPS + J(f(x + T(M_x·δ)), y*)
//   low-frequency (Eq.8): δ projected onto the lowest dim×dim DCT coefficients
//   regularizer-aware (Eqs. 9-11): + the defender's TV / Tik penalty on the
//                                   victim's first-layer feature maps
//
// The optimization runs Adam on a per-image δ batch (the loss decomposes per
// image, so attacking the whole evaluation set jointly is exactly the
// single-image attack, vectorized — DESIGN.md §5).
#pragma once

#include <cstdint>

#include "src/attack/threat_model.h"
#include "src/nn/lisa_cnn.h"

namespace blurnet::attack {

enum class PerturbationNorm { kL1, kL2 };

/// Regularizer-aware adaptive term added to the attacker loss (Eqs. 9-11).
struct FeatureRegTerm {
  enum class Kind { kNone, kTv, kTikRows, kTikElementwise };
  Kind kind = Kind::kNone;
  tensor::Tensor row_operator;          // [H,H] for kTikRows
  tensor::Tensor elementwise_operator;  // [H,W] for kTikElementwise
  double weight = 1.0;
};

struct Rp2Config {
  int iterations = 150;
  double lambda = 0.002;        // mask-norm weight (paper's λ)
  PerturbationNorm norm = PerturbationNorm::kL2;
  double nps_weight = 0.25;
  double learning_rate = 0.05;  // Adam on δ
  int target_class = 1;

  // Expectation over transformation (the paper's alignment functions T_i):
  // each iteration samples `eot_poses` fresh poses for the masked
  // perturbation, tiles the image batch to [n*K, C, H, W], forwards every
  // (image, pose) pair through the victim in one graph, and averages the
  // cross-entropy over poses. K = 1 is bitwise identical to the historical
  // single-pose-per-iteration path (attack::EotSampler's slot-0 stream is the
  // old draw sequence). The wide ranges mirror the varying-distance/angle
  // robustness RP2 optimizes for.
  bool use_eot = true;
  int eot_poses = 1;
  double max_rotation = 0.25;
  double min_scale = 0.75, max_scale = 1.10;
  double max_shift = 2.5;

  // Adaptive attack knobs.
  int dct_mask_dim = 0;        // > 0 enables the low-frequency projection
  FeatureRegTerm feature_reg;  // regularizer-aware term

  /// BPDA (Backward Pass Differentiable Approximation) against victims
  /// served behind a non-differentiable input transform: each crafting
  /// forward applies the victim's transform to the candidate adversarial
  /// batch — exactly what the serving path will do — while the backward
  /// passes gradients through as the identity (straight-through estimator).
  /// With false the attacker is *oblivious*: it crafts against the bare
  /// model and only the final predictions see the transform. Victims without
  /// a transform are unaffected either way — that path stays bitwise the
  /// historical one.
  bool bpda = true;

  /// Physical-attack semantics (default, matching the paper's evaluation):
  /// ONE sticker perturbation is optimized to fool the classifier across the
  /// whole image set, then the attack success rate is the fraction of images
  /// it flips. With false, every image gets its own δ (a strictly stronger,
  /// purely digital adversary — used by tests and ablations).
  bool shared_perturbation = true;

  std::uint64_t seed = 1;

  /// Reject malformed configurations with a descriptive
  /// std::invalid_argument (the serving engine's input-validation style):
  /// positive iterations / learning_rate / eot_poses, non-negative lambda /
  /// nps_weight / max_rotation / max_shift, min_scale <= max_scale, and a
  /// non-negative dct_mask_dim. Called by rp2_attack() up front.
  void validate() const;
};

/// Attack a batch of images. `masks` is [N,1,H,W] (the sticker mask M_x).
/// Returns adversarial examples clamped to [0,1] plus victim predictions.
///
/// The optimization differentiates through `victim.gradient_model()`; the
/// final clean/adversarial predictions go through `victim.classify()`, so an
/// engine-backed handle serves them from the batched inference path. A plain
/// nn::LisaCnn converts implicitly to a handle that uses the model for both.
AttackResult rp2_attack(const VictimHandle& victim, const tensor::Tensor& images,
                        const tensor::Tensor& masks, const Rp2Config& config);

/// Apply a crafted shared sticker (AttackResult::shared_delta, [1,C,H,W]) to
/// a *new* set of images — the physical-attack evaluation step: the same
/// printed sticker is seen on held-out sign instances. Each image's own
/// sticker mask selects where the sticker lands; the result is clamped to
/// [0,1].
tensor::Tensor apply_shared_sticker(const tensor::Tensor& images, const tensor::Tensor& masks,
                                    const tensor::Tensor& shared_delta);

}  // namespace blurnet::attack
