// Shared attack configuration and result types.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/nn/lisa_cnn.h"
#include "src/tensor/tensor.h"

namespace blurnet::attack {

/// Shared config-validation helpers behind Rp2Config::validate() /
/// PgdConfig::validate(): descriptive std::invalid_argument in the serving
/// engine's input-validation style, prefixed with the config struct's name.
namespace config_validation {
void require_positive(const char* config_name, int value, const char* field);
void require_positive(const char* config_name, double value, const char* field);
void require_non_negative(const char* config_name, double value, const char* field);
void require_scale_interval(const char* config_name, double min_scale, double max_scale);
}  // namespace config_validation

/// The two faces of an attack victim, split so each can be served by the
/// right machinery:
///
///   * the **gradient side** — the differentiable nn::LisaCnn the optimizer
///     backpropagates through while crafting the perturbation, and
///   * the **prediction side** — how the final clean/adversarial inputs are
///     classified. In the engine-backed evaluation harness this is a batched
///     serve::InferenceEngine::classify call on the victim's variant; when no
///     predict function is supplied it falls back to the gradient model's own
///     predict(), which is bitwise-identical for any replica count or batch
///     split.
///
/// A victim served behind an input-transform defense (the engine's
/// preprocess→forward pipeline) additionally exposes the transform itself,
/// so gradient-based attacks can craft with BPDA straight-through gradients:
/// the crafting forward applies transform_input() to the candidate
/// adversarial batch (matching what the serving path will do), while the
/// backward treats the transform as the identity
/// (autograd::straight_through). The prediction side needs no special
/// handling — the engine applies the transform server-side.
///
/// The handle is non-owning: the gradient model (and anything the predict /
/// transform functions capture) must outlive it.
class VictimHandle {
 public:
  using PredictFn = std::function<std::vector<int>(const tensor::Tensor&)>;
  using TransformFn = std::function<tensor::Tensor(const tensor::Tensor&)>;

  /// Wrap a plain model: gradients and predictions both come from `model`.
  /*implicit*/ VictimHandle(const nn::LisaCnn& model) : gradient_model_(&model) {}
  /// Split roles: gradients from `model`, final classifications via `predict`.
  VictimHandle(const nn::LisaCnn& model, PredictFn predict)
      : gradient_model_(&model), predict_(std::move(predict)) {}
  /// Full pipeline: gradients from `model`, classifications via `predict`,
  /// and the victim's input transform exposed for BPDA crafting. A null
  /// `transform` means the victim serves the bare forward path.
  VictimHandle(const nn::LisaCnn& model, PredictFn predict, TransformFn transform)
      : gradient_model_(&model),
        predict_(std::move(predict)),
        transform_(std::move(transform)) {}

  const nn::LisaCnn& gradient_model() const { return *gradient_model_; }

  /// True when the victim serves an input transform the attacker must BPDA
  /// through.
  bool has_input_transform() const { return static_cast<bool>(transform_); }

  /// The victim's preprocess stage applied to a batch; identity (shared
  /// storage, no copy) when the victim has none.
  tensor::Tensor transform_input(const tensor::Tensor& images) const {
    return transform_ ? transform_(images) : images;
  }

  /// Classify a batch through the prediction side.
  std::vector<int> classify(const tensor::Tensor& images) const {
    return predict_ ? predict_(images) : gradient_model_->predict(images);
  }

 private:
  const nn::LisaCnn* gradient_model_;
  PredictFn predict_;
  TransformFn transform_;
};

/// Result of attacking a batch of images.
struct AttackResult {
  tensor::Tensor adversarial;       // [N,C,H,W], clamped to [0,1]
  tensor::Tensor perturbation;      // adversarial - natural (masked where applicable)
  tensor::Tensor shared_delta;      // [1,C,H,W] raw shared sticker (RP2 shared mode only)
  std::vector<int> clean_pred;      // victim predictions on natural inputs
  std::vector<int> adv_pred;        // victim predictions on adversarial inputs
  double final_loss = 0.0;

  /// Paper §II-A: fraction of predictions altered by the attack.
  double success_rate_altered() const;
  /// Fraction of adversarial predictions equal to `target`.
  double success_rate_targeted(int target) const;
  /// Mean relative L2 dissimilarity (paper §II-A) vs the naturals.
  double l2_dissimilarity(const tensor::Tensor& natural) const;
};

}  // namespace blurnet::attack
