// Shared attack configuration and result types.
#pragma once

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace blurnet::attack {

/// Result of attacking a batch of images.
struct AttackResult {
  tensor::Tensor adversarial;       // [N,C,H,W], clamped to [0,1]
  tensor::Tensor perturbation;      // adversarial - natural (masked where applicable)
  tensor::Tensor shared_delta;      // [1,C,H,W] raw shared sticker (RP2 shared mode only)
  std::vector<int> clean_pred;      // victim predictions on natural inputs
  std::vector<int> adv_pred;        // victim predictions on adversarial inputs
  double final_loss = 0.0;

  /// Paper §II-A: fraction of predictions altered by the attack.
  double success_rate_altered() const;
  /// Fraction of adversarial predictions equal to `target`.
  double success_rate_targeted(int target) const;
  /// Mean relative L2 dissimilarity (paper §II-A) vs the naturals.
  double l2_dissimilarity(const tensor::Tensor& natural) const;
};

}  // namespace blurnet::attack
