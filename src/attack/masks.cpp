#include "src/attack/masks.h"

#include <algorithm>
#include <stdexcept>

namespace blurnet::attack {

tensor::Tensor sticker_mask(const tensor::Tensor& sign_region, double upper_frac,
                            double lower_frac, double bar_height_frac,
                            double bar_width_frac) {
  if (sign_region.rank() != 4 || sign_region.dim(1) != 1) {
    throw std::invalid_argument("sticker_mask: expected [N,1,H,W]");
  }
  const std::int64_t n = sign_region.dim(0), h = sign_region.dim(2), w = sign_region.dim(3);
  tensor::Tensor out(sign_region.shape());
  for (std::int64_t in = 0; in < n; ++in) {
    const float* region = sign_region.data() + in * h * w;
    float* dst = out.data() + in * h * w;
    // Bounding box of the sign region.
    std::int64_t y_min = h, y_max = -1, x_min = w, x_max = -1;
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        if (region[y * w + x] > 0.5f) {
          y_min = std::min(y_min, y);
          y_max = std::max(y_max, y);
          x_min = std::min(x_min, x);
          x_max = std::max(x_max, x);
        }
      }
    }
    if (y_max < y_min) continue;  // empty region
    const double box_h = static_cast<double>(y_max - y_min + 1);
    const double box_w = static_cast<double>(x_max - x_min + 1);
    const double half_bar = 0.5 * bar_height_frac * box_h;
    const double x_center = 0.5 * (x_min + x_max);
    const double half_width = 0.5 * bar_width_frac * box_w;
    const double centers[2] = {y_min + upper_frac * box_h, y_min + lower_frac * box_h};
    for (std::int64_t y = 0; y < h; ++y) {
      const bool in_bar = (std::abs(y - centers[0]) <= half_bar) ||
                          (std::abs(y - centers[1]) <= half_bar);
      if (!in_bar) continue;
      for (std::int64_t x = 0; x < w; ++x) {
        if (std::abs(x - x_center) > half_width) continue;
        if (region[y * w + x] > 0.5f) dst[y * w + x] = 1.0f;
      }
    }
  }
  return out;
}

tensor::Tensor expand_mask_channels(const tensor::Tensor& mask, std::int64_t channels) {
  if (mask.rank() != 4 || mask.dim(1) != 1) {
    throw std::invalid_argument("expand_mask_channels: expected [N,1,H,W]");
  }
  const std::int64_t n = mask.dim(0), h = mask.dim(2), w = mask.dim(3);
  tensor::Tensor out(tensor::Shape::nchw(n, channels, h, w));
  for (std::int64_t in = 0; in < n; ++in) {
    const float* src = mask.data() + in * h * w;
    for (std::int64_t c = 0; c < channels; ++c) {
      std::copy(src, src + h * w, out.data() + (in * channels + c) * h * w);
    }
  }
  return out;
}

double mask_coverage(const tensor::Tensor& mask) {
  double set = 0.0;
  const float* p = mask.data();
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    if (p[i] > 0.5f) set += 1.0;
  }
  return set / static_cast<double>(mask.numel());
}

}  // namespace blurnet::attack
