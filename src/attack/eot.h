// Pose sampling for Expectation over Transformation (EOT) attack crafting.
//
// The paper's RP2 objective is an expectation over alignment functions T_i
// (rotation / scale / translation of the printed sticker). EotSampler draws a
// batch of K poses per optimization step so the gradient side can forward all
// (image, pose) pairs through the victim in one graph instead of sampling a
// single pose per iteration.
//
// Determinism contract (relied on by the evaluation protocols and the K=1
// regression tests):
//
//   * Pose slot k owns its own RNG stream seeded from (seed, k) alone, so the
//     pose sequence a slot produces across steps depends only on the seed and
//     the slot index — never on K, the image batch size, or which scheduler
//     lane runs the crafting job.
//   * Slot 0's stream is exactly util::Rng(seed) drawing shift-y, shift-x,
//     scale, rotation per step — the same seed and effective draw order the
//     old single-pose rp2_attack loop consumed (it drew inside a function
//     argument list, which this repo's GCC toolchain evaluates right to
//     left; the sampler pins that order as sequenced statements), so K = 1
//     reproduces the pre-pose-batching attack bitwise.
#pragma once

#include <cstdint>
#include <vector>

#include "src/autograd/ops.h"
#include "src/util/rng.h"

namespace blurnet::attack {

/// Pose ranges of the alignment distribution: rotation is uniform in
/// [-max_rotation, max_rotation] radians, isotropic scale uniform in
/// [min_scale, max_scale], and each shift component uniform in
/// [-max_shift, max_shift] pixels.
struct EotPoseRange {
  double max_rotation = 0.25;
  double min_scale = 0.75;
  double max_scale = 1.10;
  double max_shift = 2.5;
};

class EotSampler {
 public:
  /// `poses` is K, the number of pose slots drawn per step (>= 1). Throws
  /// std::invalid_argument on a non-positive pose count, an empty scale
  /// interval (min_scale > max_scale), or a negative rotation/shift bound.
  EotSampler(std::uint64_t seed, int poses, const EotPoseRange& range);

  int poses() const { return static_cast<int>(streams_.size()); }

  /// Draw the next step's K poses for an height×width image, one per slot in
  /// slot order. Each call advances every slot's stream by one pose.
  std::vector<autograd::Affine2D> sample_step(int height, int width);

 private:
  std::vector<util::Rng> streams_;  // streams_[k] = pose slot k
  EotPoseRange range_;
};

}  // namespace blurnet::attack
