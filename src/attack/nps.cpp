#include "src/attack/nps.h"

namespace blurnet::attack {

tensor::Tensor printable_palette() {
  // Grayscale ramp + saturated printable primaries/secondaries. Kept small so
  // the product form of the NPS term stays numerically meaningful (see
  // DESIGN.md §1, NPS substitution note).
  const std::vector<float> colors = {
      0.05f, 0.05f, 0.05f,   // near-black
      0.25f, 0.25f, 0.25f,   // dark gray
      0.50f, 0.50f, 0.50f,   // mid gray
      0.75f, 0.75f, 0.75f,   // light gray
      0.95f, 0.95f, 0.95f,   // near-white
      0.80f, 0.10f, 0.10f,   // red
      0.10f, 0.55f, 0.15f,   // green
      0.10f, 0.20f, 0.70f,   // blue
      0.90f, 0.80f, 0.10f,   // yellow
      0.85f, 0.45f, 0.10f,   // orange
      0.55f, 0.15f, 0.55f,   // purple
      0.10f, 0.60f, 0.60f,   // teal
  };
  return tensor::Tensor(tensor::Shape{12, 3}, colors);
}

}  // namespace blurnet::attack
