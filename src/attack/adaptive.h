// Convenience constructors for the paper's adaptive attacks (§V): they are
// RP2 configurations with the low-frequency DCT projection (Eq. 8) or the
// defender's own regularizer folded into the attacker loss (Eqs. 9-11).
#pragma once

#include "src/attack/rp2.h"

namespace blurnet::attack {

/// §V-A: low-frequency attack on the depthwise-convolution defenses. The
/// masked perturbation is projected onto its lowest `dct_dim`×`dct_dim`
/// DCT coefficients each iteration (default 16, swept in Fig. 3).
Rp2Config low_frequency_config(const Rp2Config& base, int dct_dim = 16);

/// §V-B, Eq. 9: adds the TV penalty of the victim's first-layer feature maps
/// to the attacker loss.
Rp2Config tv_aware_config(const Rp2Config& base, double weight = 1.0);

/// §V-B, Eq. 10: adds ||L_hf · F||² with the defender's operator.
Rp2Config tik_hf_aware_config(const Rp2Config& base, const tensor::Tensor& l_hf,
                              double weight = 1.0);

/// §V-B, Eq. 11: adds ||L_diff⁺ ⊙ F||² with the defender's operator.
Rp2Config tik_pseudo_aware_config(const Rp2Config& base, const tensor::Tensor& p_operator,
                                  double weight = 1.0);

}  // namespace blurnet::attack
