// Convenience constructors for the paper's adaptive attacks (§V): they are
// RP2 configurations with the low-frequency DCT projection (Eq. 8) or the
// defender's own regularizer folded into the attacker loss (Eqs. 9-11).
//
// Each *_config function maps a base config to its adaptive variant; the
// *_adapter factories package the same mapping as a reusable Rp2Adapter for
// the evaluation protocols (eval::AdaptiveSweep tailors the sweep's base
// config per victim through one of these).
#pragma once

#include <functional>

#include "src/attack/rp2.h"

namespace blurnet::attack {

/// Maps the evaluation protocol's base RP2 config to the attack actually run
/// against a given victim (e.g. one of the adaptive variants below).
using Rp2Adapter = std::function<Rp2Config(const Rp2Config&)>;

/// §V-A: low-frequency attack on the depthwise-convolution defenses. The
/// masked perturbation is projected onto its lowest `dct_dim`×`dct_dim`
/// DCT coefficients each iteration (default 16, swept in Fig. 3).
Rp2Config low_frequency_config(const Rp2Config& base, int dct_dim = 16);

/// §V-B, Eq. 9: adds the TV penalty of the victim's first-layer feature maps
/// to the attacker loss.
Rp2Config tv_aware_config(const Rp2Config& base, double weight = 1.0);

/// §V-B, Eq. 10: adds ||L_hf · F||² with the defender's operator.
Rp2Config tik_hf_aware_config(const Rp2Config& base, const tensor::Tensor& l_hf,
                              double weight = 1.0);

/// §V-B, Eq. 11: adds ||L_diff⁺ ⊙ F||² with the defender's operator.
Rp2Config tik_pseudo_aware_config(const Rp2Config& base, const tensor::Tensor& p_operator,
                                  double weight = 1.0);

/// Pose-batched EOT: average the attacker loss over `poses` sampled
/// alignments per step (K = 1 is the historical single-pose path; see
/// Rp2Config::eot_poses for the determinism contract).
Rp2Config eot_poses_config(const Rp2Config& base, int poses);

/// BPDA (Athalye et al. 2018) against input-transform defenses (squeeze /
/// median / DCT quantization served through the engine's preprocess stage):
/// the crafting forward applies the victim's transform, the backward passes
/// gradients straight through as the identity (Rp2Config::bpda). `enabled`
/// false yields the *oblivious* attacker, which crafts against the bare
/// model — on a transform-free victim both settings are bitwise the plain
/// white-box attack.
Rp2Config bpda_config(const Rp2Config& base, bool enabled = true);

/// Adapter forms of the adaptive attacks, for protocol objects.
Rp2Adapter low_frequency_adapter(int dct_dim = 16);
Rp2Adapter tv_aware_adapter(double weight = 1.0);
Rp2Adapter tik_hf_aware_adapter(tensor::Tensor l_hf, double weight = 1.0);
Rp2Adapter tik_pseudo_aware_adapter(tensor::Tensor p_operator, double weight = 1.0);
Rp2Adapter eot_poses_adapter(int poses);
Rp2Adapter bpda_adapter(bool enabled = true);

/// Left-to-right adapter composition (`outer` runs on `inner`'s output), so
/// e.g. compose(low_frequency_adapter(16), eot_poses_adapter(8)) is the
/// pose-batched low-frequency attack. Either side may be null (identity).
Rp2Adapter compose(Rp2Adapter inner, Rp2Adapter outer);

}  // namespace blurnet::attack
