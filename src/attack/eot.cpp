#include "src/attack/eot.h"

#include <stdexcept>
#include <string>

namespace blurnet::attack {

namespace {

// splitmix64's golden-gamma increment: distinct per-slot seed bases feed the
// Rng constructor's splitmix expansion, decorrelating the slot streams while
// keeping slot 0 at the raw seed (the old single-pose stream).
constexpr std::uint64_t kSlotGamma = 0x9e3779b97f4a7c15ULL;

}  // namespace

EotSampler::EotSampler(std::uint64_t seed, int poses, const EotPoseRange& range)
    : range_(range) {
  if (poses < 1) {
    throw std::invalid_argument("EotSampler: pose count must be >= 1 (got " +
                                std::to_string(poses) + ")");
  }
  if (range.min_scale > range.max_scale) {
    throw std::invalid_argument("EotSampler: min_scale must be <= max_scale");
  }
  if (range.max_rotation < 0.0 || range.max_shift < 0.0) {
    throw std::invalid_argument(
        "EotSampler: max_rotation and max_shift must be non-negative");
  }
  streams_.reserve(static_cast<std::size_t>(poses));
  for (int k = 0; k < poses; ++k) {
    streams_.emplace_back(seed + kSlotGamma * static_cast<std::uint64_t>(k));
  }
}

std::vector<autograd::Affine2D> EotSampler::sample_step(int height, int width) {
  std::vector<autograd::Affine2D> step;
  step.reserve(streams_.size());
  for (auto& rng : streams_) {
    // Draw order: shift-y, shift-x, scale, rotation. The historical rp2 loop
    // consumed the stream through function-argument evaluation, which the
    // repo's GCC toolchain performs right-to-left — the order was never
    // actually specified. Writing it out as sequenced statements pins the
    // behavior the shipped binaries had, so the K = 1 bitwise regression
    // holds AND the sequence is now defined on every compiler.
    const double dy = rng.uniform(-range_.max_shift, range_.max_shift);
    const double dx = rng.uniform(-range_.max_shift, range_.max_shift);
    const double scale = rng.uniform(range_.min_scale, range_.max_scale);
    const double rotation = rng.uniform(-range_.max_rotation, range_.max_rotation);
    step.push_back(autograd::Affine2D::rotation_scale_about_center(rotation, scale, dx, dy,
                                                                   height, width));
  }
  return step;
}

}  // namespace blurnet::attack
