#include "src/attack/rp2.h"

#include <stdexcept>
#include <string>

#include "src/attack/eot.h"
#include "src/attack/masks.h"
#include "src/attack/nps.h"
#include "src/autograd/ops.h"
#include "src/nn/optim.h"
#include "src/signal/dct.h"
#include "src/tensor/ops.h"

namespace blurnet::attack {

using autograd::Variable;
using tensor::Tensor;

namespace {

Variable feature_reg_loss(const FeatureRegTerm& term, const Variable& features) {
  switch (term.kind) {
    case FeatureRegTerm::Kind::kNone:
      return Variable();
    case FeatureRegTerm::Kind::kTv:
      return autograd::mul_scalar(autograd::tv_loss(features),
                                  static_cast<float>(term.weight));
    case FeatureRegTerm::Kind::kTikRows:
      return autograd::mul_scalar(autograd::tikhonov_rows(features, term.row_operator),
                                  static_cast<float>(term.weight));
    case FeatureRegTerm::Kind::kTikElementwise:
      return autograd::mul_scalar(
          autograd::tikhonov_elementwise(features, term.elementwise_operator),
          static_cast<float>(term.weight));
  }
  return Variable();
}

}  // namespace

void Rp2Config::validate() const {
  using namespace config_validation;
  require_positive("Rp2Config", iterations, "iterations");
  require_positive("Rp2Config", learning_rate, "learning_rate");
  require_positive("Rp2Config", eot_poses, "eot_poses");
  require_non_negative("Rp2Config", lambda, "lambda");
  require_non_negative("Rp2Config", nps_weight, "nps_weight");
  require_non_negative("Rp2Config", max_rotation, "max_rotation");
  require_non_negative("Rp2Config", max_shift, "max_shift");
  require_non_negative("Rp2Config", feature_reg.weight, "feature_reg.weight");
  require_scale_interval("Rp2Config", min_scale, max_scale);
  if (dct_mask_dim < 0) {
    throw std::invalid_argument("Rp2Config: dct_mask_dim must be non-negative (got " +
                                std::to_string(dct_mask_dim) + ")");
  }
}

AttackResult rp2_attack(const VictimHandle& victim, const Tensor& images,
                        const Tensor& masks, const Rp2Config& config) {
  config.validate();
  const nn::LisaCnn& model = victim.gradient_model();
  if (images.rank() != 4) throw std::invalid_argument("rp2_attack: images must be NCHW");
  const std::int64_t n = images.dim(0), c = images.dim(1);
  const int h = static_cast<int>(images.dim(2));
  const int w = static_cast<int>(images.dim(3));
  if (masks.dim(0) != n) throw std::invalid_argument("rp2_attack: mask batch mismatch");

  const Tensor mask_c = expand_mask_channels(masks, c);
  const Tensor palette = printable_palette();

  // Pose-batched EOT: K poses per step, every (image, pose) pair forwarded in
  // one graph. The sampler's slot-0 stream is the historical single-pose draw
  // sequence, so K = 1 reproduces the old path bitwise.
  const int poses = config.use_eot ? config.eot_poses : 1;
  EotSampler sampler(config.seed, poses,
                     EotPoseRange{config.max_rotation, config.min_scale, config.max_scale,
                                  config.max_shift});

  // The natural images repeated once per pose (constant, so tiled up front).
  Tensor images_tiled;
  if (poses > 1) {
    images_tiled = Tensor(tensor::Shape::nchw(n * poses, c, h, w));
    const std::int64_t stride = images.numel();
    for (int j = 0; j < poses; ++j) {
      std::copy(images.data(), images.data() + stride, images_tiled.data() + j * stride);
    }
  }

  const tensor::Shape delta_shape = config.shared_perturbation
                                        ? tensor::Shape::nchw(1, c, h, w)
                                        : images.shape();
  Variable delta = Variable::leaf(Tensor::zeros(delta_shape), /*requires_grad=*/true);
  nn::Adam optimizer({delta}, config.learning_rate);

  const std::vector<int> targets(static_cast<std::size_t>(n * poses), config.target_class);
  double final_loss = 0.0;

  for (int iter = 0; iter < config.iterations; ++iter) {
    Variable delta_batch =
        config.shared_perturbation ? autograd::broadcast_batch(delta, n) : delta;
    Variable masked = autograd::mul_const(delta_batch, mask_c);
    if (config.dct_mask_dim > 0) {
      masked = autograd::dct_lowpass(masked, config.dct_mask_dim);
    }

    Variable applied = masked;
    if (config.use_eot) {
      const auto step_poses = sampler.sample_step(h, w);
      // Pose-major tiling: rows [j*n, (j+1)*n) are the whole batch under
      // pose j, so the per-row transform table is K blocks of n entries.
      const Variable tiled = poses > 1 ? autograd::repeat_batch(masked, poses) : masked;
      std::vector<autograd::Affine2D> row_transforms;
      row_transforms.reserve(static_cast<std::size_t>(n * poses));
      for (int j = 0; j < poses; ++j) {
        row_transforms.insert(row_transforms.end(), static_cast<std::size_t>(n),
                              step_poses[static_cast<std::size_t>(j)]);
      }
      applied = autograd::affine_warp(tiled, row_transforms);
    }
    Variable x_adv = autograd::add_const(applied, poses > 1 ? images_tiled : images);
    if (config.bpda && victim.has_input_transform()) {
      // BPDA straight-through: the forward sees exactly what the victim's
      // serving pipeline would (transform applied to the candidate batch),
      // the backward treats the transform as the identity.
      x_adv = autograd::straight_through(x_adv, victim.transform_input(x_adv.value()));
    }

    const auto fwd = model.forward(x_adv);
    // Mean cross-entropy over the [n*K] rows = the empirical expectation of
    // the targeted loss over the K sampled alignments.
    Variable loss = autograd::softmax_cross_entropy(fwd.logits, targets);

    Variable norm_term = config.norm == PerturbationNorm::kL2 ? autograd::l2_norm(masked)
                                                              : autograd::l1_norm(masked);
    loss = autograd::add(loss, autograd::mul_scalar(norm_term,
                                                    static_cast<float>(config.lambda)));
    if (config.nps_weight > 0.0 && c == 3) {
      loss = autograd::add(loss, autograd::mul_scalar(autograd::nps_loss(masked, palette),
                                                      static_cast<float>(config.nps_weight)));
    }
    const Variable reg = feature_reg_loss(config.feature_reg, fwd.features_l1);
    if (reg.defined()) loss = autograd::add(loss, reg);

    optimizer.zero_grad();
    autograd::backward(loss);
    optimizer.step();
    final_loss = loss.scalar_value();

    // Keep δ in a physically meaningful range: the perturbed pixel values
    // x + M·δ must stay realizable, so bound each δ entry to [-1, 1].
    delta.mutable_value() = tensor::clamp(delta.value(), -1.0f, 1.0f);
  }

  // Final adversarial examples: identity alignment, clamped to image range.
  Tensor delta_final = delta.value();
  AttackResult result;
  if (config.shared_perturbation) {
    result.shared_delta = config.dct_mask_dim > 0
                              ? signal::dct_lowpass_nchw(delta_final, config.dct_mask_dim)
                              : delta_final.clone();
  }
  if (config.shared_perturbation) {
    Tensor tiled(images.shape());
    const std::int64_t stride = delta_final.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      std::copy(delta_final.data(), delta_final.data() + stride, tiled.data() + i * stride);
    }
    delta_final = tiled;
  }
  Tensor masked_final = tensor::mul(delta_final, mask_c);
  if (config.dct_mask_dim > 0) {
    masked_final = signal::dct_lowpass_nchw(masked_final, config.dct_mask_dim);
  }
  result.adversarial = tensor::clamp(tensor::add(images, masked_final), 0.0f, 1.0f);
  result.perturbation = tensor::sub(result.adversarial, images);
  result.clean_pred = victim.classify(images);
  result.adv_pred = victim.classify(result.adversarial);
  result.final_loss = final_loss;
  return result;
}

tensor::Tensor apply_shared_sticker(const Tensor& images, const Tensor& masks,
                                    const Tensor& shared_delta) {
  if (images.rank() != 4) throw std::invalid_argument("apply_shared_sticker: images NCHW");
  const std::int64_t n = images.dim(0), c = images.dim(1);
  if (shared_delta.rank() != 4 || shared_delta.dim(0) != 1 ||
      shared_delta.numel() * n != images.numel()) {
    throw std::invalid_argument("apply_shared_sticker: delta must be [1,C,H,W]");
  }
  const Tensor mask_c = expand_mask_channels(masks, c);
  Tensor tiled(images.shape());
  const std::int64_t stride = shared_delta.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy(shared_delta.data(), shared_delta.data() + stride, tiled.data() + i * stride);
  }
  return tensor::clamp(tensor::add(images, tensor::mul(tiled, mask_c)), 0.0f, 1.0f);
}

}  // namespace blurnet::attack
