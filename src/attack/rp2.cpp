#include "src/attack/rp2.h"

#include <stdexcept>

#include "src/attack/masks.h"
#include "src/attack/nps.h"
#include "src/autograd/ops.h"
#include "src/nn/optim.h"
#include "src/signal/dct.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

namespace blurnet::attack {

using autograd::Variable;
using tensor::Tensor;

namespace {

Variable feature_reg_loss(const FeatureRegTerm& term, const Variable& features) {
  switch (term.kind) {
    case FeatureRegTerm::Kind::kNone:
      return Variable();
    case FeatureRegTerm::Kind::kTv:
      return autograd::mul_scalar(autograd::tv_loss(features),
                                  static_cast<float>(term.weight));
    case FeatureRegTerm::Kind::kTikRows:
      return autograd::mul_scalar(autograd::tikhonov_rows(features, term.row_operator),
                                  static_cast<float>(term.weight));
    case FeatureRegTerm::Kind::kTikElementwise:
      return autograd::mul_scalar(
          autograd::tikhonov_elementwise(features, term.elementwise_operator),
          static_cast<float>(term.weight));
  }
  return Variable();
}

}  // namespace

AttackResult rp2_attack(const VictimHandle& victim, const Tensor& images,
                        const Tensor& masks, const Rp2Config& config) {
  const nn::LisaCnn& model = victim.gradient_model();
  if (images.rank() != 4) throw std::invalid_argument("rp2_attack: images must be NCHW");
  const std::int64_t n = images.dim(0), c = images.dim(1);
  const int h = static_cast<int>(images.dim(2));
  const int w = static_cast<int>(images.dim(3));
  if (masks.dim(0) != n) throw std::invalid_argument("rp2_attack: mask batch mismatch");

  const Tensor mask_c = expand_mask_channels(masks, c);
  const Tensor palette = printable_palette();
  util::Rng rng(config.seed);

  const tensor::Shape delta_shape = config.shared_perturbation
                                        ? tensor::Shape::nchw(1, c, h, w)
                                        : images.shape();
  Variable delta = Variable::leaf(Tensor::zeros(delta_shape), /*requires_grad=*/true);
  nn::Adam optimizer({delta}, config.learning_rate);

  const std::vector<int> targets(static_cast<std::size_t>(n), config.target_class);
  double final_loss = 0.0;

  for (int iter = 0; iter < config.iterations; ++iter) {
    Variable delta_batch =
        config.shared_perturbation ? autograd::broadcast_batch(delta, n) : delta;
    Variable masked = autograd::mul_const(delta_batch, mask_c);
    if (config.dct_mask_dim > 0) {
      masked = autograd::dct_lowpass(masked, config.dct_mask_dim);
    }

    Variable applied = masked;
    if (config.use_eot) {
      const auto transform = autograd::Affine2D::rotation_scale_about_center(
          rng.uniform(-config.max_rotation, config.max_rotation),
          rng.uniform(config.min_scale, config.max_scale),
          rng.uniform(-config.max_shift, config.max_shift),
          rng.uniform(-config.max_shift, config.max_shift), h, w);
      applied = autograd::affine_warp(masked, transform);
    }
    Variable x_adv = autograd::add_const(applied, images);

    const auto fwd = model.forward(x_adv);
    Variable loss = autograd::softmax_cross_entropy(fwd.logits, targets);

    Variable norm_term = config.norm == PerturbationNorm::kL2 ? autograd::l2_norm(masked)
                                                              : autograd::l1_norm(masked);
    loss = autograd::add(loss, autograd::mul_scalar(norm_term,
                                                    static_cast<float>(config.lambda)));
    if (config.nps_weight > 0.0 && c == 3) {
      loss = autograd::add(loss, autograd::mul_scalar(autograd::nps_loss(masked, palette),
                                                      static_cast<float>(config.nps_weight)));
    }
    const Variable reg = feature_reg_loss(config.feature_reg, fwd.features_l1);
    if (reg.defined()) loss = autograd::add(loss, reg);

    optimizer.zero_grad();
    autograd::backward(loss);
    optimizer.step();
    final_loss = loss.scalar_value();

    // Keep δ in a physically meaningful range: the perturbed pixel values
    // x + M·δ must stay realizable, so bound each δ entry to [-1, 1].
    delta.mutable_value() = tensor::clamp(delta.value(), -1.0f, 1.0f);
  }

  // Final adversarial examples: identity alignment, clamped to image range.
  Tensor delta_final = delta.value();
  AttackResult result;
  if (config.shared_perturbation) {
    result.shared_delta = config.dct_mask_dim > 0
                              ? signal::dct_lowpass_nchw(delta_final, config.dct_mask_dim)
                              : delta_final.clone();
  }
  if (config.shared_perturbation) {
    Tensor tiled(images.shape());
    const std::int64_t stride = delta_final.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      std::copy(delta_final.data(), delta_final.data() + stride, tiled.data() + i * stride);
    }
    delta_final = tiled;
  }
  Tensor masked_final = tensor::mul(delta_final, mask_c);
  if (config.dct_mask_dim > 0) {
    masked_final = signal::dct_lowpass_nchw(masked_final, config.dct_mask_dim);
  }
  result.adversarial = tensor::clamp(tensor::add(images, masked_final), 0.0f, 1.0f);
  result.perturbation = tensor::sub(result.adversarial, images);
  result.clean_pred = victim.classify(images);
  result.adv_pred = victim.classify(result.adversarial);
  result.final_loss = final_loss;
  return result;
}

tensor::Tensor apply_shared_sticker(const Tensor& images, const Tensor& masks,
                                    const Tensor& shared_delta) {
  if (images.rank() != 4) throw std::invalid_argument("apply_shared_sticker: images NCHW");
  const std::int64_t n = images.dim(0), c = images.dim(1);
  if (shared_delta.rank() != 4 || shared_delta.dim(0) != 1 ||
      shared_delta.numel() * n != images.numel()) {
    throw std::invalid_argument("apply_shared_sticker: delta must be [1,C,H,W]");
  }
  const Tensor mask_c = expand_mask_channels(masks, c);
  Tensor tiled(images.shape());
  const std::int64_t stride = shared_delta.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy(shared_delta.data(), shared_delta.data() + stride, tiled.data() + i * stride);
  }
  return tensor::clamp(tensor::add(images, tensor::mul(tiled, mask_c)), 0.0f, 1.0f);
}

}  // namespace blurnet::attack
