// Perturbation masks. RP2 constrains the perturbation to the sign itself via
// a binary mask M_x; the physical attack uses sticker-shaped sub-masks (the
// two black-and-white bars of Eykholt et al.). We derive both from the
// renderer's sign-region mask.
#pragma once

#include "src/tensor/tensor.h"

namespace blurnet::attack {

/// Sticker mask: two horizontal bars across the sign region (the classic RP2
/// stop-sign sticker layout). `sign_region` is [N,1,H,W] with 1 inside the
/// sign silhouette; the result is [N,1,H,W] restricted to the silhouette.
/// Bar centres sit at `upper_frac`/`lower_frac` of each sign's bounding box
/// height, each `bar_height_frac` of the box tall and spanning the central
/// `bar_width_frac` of the box width (stickers cover a small localized patch,
/// not the whole sign — the locality the defense exploits).
tensor::Tensor sticker_mask(const tensor::Tensor& sign_region, double upper_frac = 0.30,
                            double lower_frac = 0.72, double bar_height_frac = 0.10,
                            double bar_width_frac = 0.72);

/// Broadcast a [N,1,H,W] mask to [N,C,H,W].
tensor::Tensor expand_mask_channels(const tensor::Tensor& mask, std::int64_t channels);

/// Fraction of pixels set in a mask (diagnostics / tests).
double mask_coverage(const tensor::Tensor& mask);

}  // namespace blurnet::attack
