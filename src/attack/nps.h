// Non-printability score support (Sharif et al. 2016; paper §II-B). The
// palette approximates the colours a commodity printer reproduces reliably.
#pragma once

#include "src/tensor/tensor.h"

namespace blurnet::attack {

/// [P,3] RGB triples in [0,1] of printable colours (12 entries: grayscale
/// ramp + saturated primaries/secondaries at printable intensities).
tensor::Tensor printable_palette();

}  // namespace blurnet::attack
