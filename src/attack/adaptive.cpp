#include "src/attack/adaptive.h"

#include <utility>

namespace blurnet::attack {

Rp2Config low_frequency_config(const Rp2Config& base, int dct_dim) {
  Rp2Config config = base;
  config.dct_mask_dim = dct_dim;
  return config;
}

Rp2Config tv_aware_config(const Rp2Config& base, double weight) {
  Rp2Config config = base;
  config.feature_reg.kind = FeatureRegTerm::Kind::kTv;
  config.feature_reg.weight = weight;
  return config;
}

Rp2Config tik_hf_aware_config(const Rp2Config& base, const tensor::Tensor& l_hf,
                              double weight) {
  Rp2Config config = base;
  config.feature_reg.kind = FeatureRegTerm::Kind::kTikRows;
  config.feature_reg.row_operator = l_hf;
  config.feature_reg.weight = weight;
  return config;
}

Rp2Config tik_pseudo_aware_config(const Rp2Config& base, const tensor::Tensor& p_operator,
                                  double weight) {
  Rp2Config config = base;
  config.feature_reg.kind = FeatureRegTerm::Kind::kTikElementwise;
  config.feature_reg.elementwise_operator = p_operator;
  config.feature_reg.weight = weight;
  return config;
}

Rp2Config eot_poses_config(const Rp2Config& base, int poses) {
  Rp2Config config = base;
  config.eot_poses = poses;
  return config;
}

Rp2Config bpda_config(const Rp2Config& base, bool enabled) {
  Rp2Config config = base;
  config.bpda = enabled;
  return config;
}

Rp2Adapter low_frequency_adapter(int dct_dim) {
  return [dct_dim](const Rp2Config& base) { return low_frequency_config(base, dct_dim); };
}

Rp2Adapter tv_aware_adapter(double weight) {
  return [weight](const Rp2Config& base) { return tv_aware_config(base, weight); };
}

Rp2Adapter tik_hf_aware_adapter(tensor::Tensor l_hf, double weight) {
  // Tensors share storage on copy, so capturing by value is cheap.
  return [l_hf = std::move(l_hf), weight](const Rp2Config& base) {
    return tik_hf_aware_config(base, l_hf, weight);
  };
}

Rp2Adapter tik_pseudo_aware_adapter(tensor::Tensor p_operator, double weight) {
  return [p = std::move(p_operator), weight](const Rp2Config& base) {
    return tik_pseudo_aware_config(base, p, weight);
  };
}

Rp2Adapter eot_poses_adapter(int poses) {
  return [poses](const Rp2Config& base) { return eot_poses_config(base, poses); };
}

Rp2Adapter bpda_adapter(bool enabled) {
  return [enabled](const Rp2Config& base) { return bpda_config(base, enabled); };
}

Rp2Adapter compose(Rp2Adapter inner, Rp2Adapter outer) {
  if (!inner) return outer;
  if (!outer) return inner;
  return [inner = std::move(inner), outer = std::move(outer)](const Rp2Config& base) {
    return outer(inner(base));
  };
}

}  // namespace blurnet::attack
