#include "src/attack/adaptive.h"

namespace blurnet::attack {

Rp2Config low_frequency_config(const Rp2Config& base, int dct_dim) {
  Rp2Config config = base;
  config.dct_mask_dim = dct_dim;
  return config;
}

Rp2Config tv_aware_config(const Rp2Config& base, double weight) {
  Rp2Config config = base;
  config.feature_reg.kind = FeatureRegTerm::Kind::kTv;
  config.feature_reg.weight = weight;
  return config;
}

Rp2Config tik_hf_aware_config(const Rp2Config& base, const tensor::Tensor& l_hf,
                              double weight) {
  Rp2Config config = base;
  config.feature_reg.kind = FeatureRegTerm::Kind::kTikRows;
  config.feature_reg.row_operator = l_hf;
  config.feature_reg.weight = weight;
  return config;
}

Rp2Config tik_pseudo_aware_config(const Rp2Config& base, const tensor::Tensor& p_operator,
                                  double weight) {
  Rp2Config config = base;
  config.feature_reg.kind = FeatureRegTerm::Kind::kTikElementwise;
  config.feature_reg.elementwise_operator = p_operator;
  config.feature_reg.weight = weight;
  return config;
}

}  // namespace blurnet::attack
