#include "src/attack/threat_model.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "src/tensor/ops.h"

namespace blurnet::attack {

namespace config_validation {

void require_positive(const char* config_name, int value, const char* field) {
  if (value <= 0) {
    throw std::invalid_argument(std::string(config_name) + ": " + field +
                                " must be positive (got " + std::to_string(value) + ")");
  }
}

void require_positive(const char* config_name, double value, const char* field) {
  if (!(value > 0.0)) {
    throw std::invalid_argument(std::string(config_name) + ": " + field +
                                " must be positive (got " + std::to_string(value) + ")");
  }
}

void require_non_negative(const char* config_name, double value, const char* field) {
  if (value < 0.0) {
    throw std::invalid_argument(std::string(config_name) + ": " + field +
                                " must be non-negative (got " + std::to_string(value) + ")");
  }
}

void require_scale_interval(const char* config_name, double min_scale, double max_scale) {
  if (min_scale > max_scale) {
    throw std::invalid_argument(std::string(config_name) + ": min_scale (" +
                                std::to_string(min_scale) + ") must be <= max_scale (" +
                                std::to_string(max_scale) + ")");
  }
}

}  // namespace config_validation

double AttackResult::success_rate_altered() const {
  if (clean_pred.empty()) return 0.0;
  int altered = 0;
  for (std::size_t i = 0; i < clean_pred.size(); ++i) {
    if (clean_pred[i] != adv_pred[i]) ++altered;
  }
  return static_cast<double>(altered) / static_cast<double>(clean_pred.size());
}

double AttackResult::success_rate_targeted(int target) const {
  if (adv_pred.empty()) return 0.0;
  int hits = 0;
  for (const int p : adv_pred) {
    if (p == target) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(adv_pred.size());
}

double AttackResult::l2_dissimilarity(const tensor::Tensor& natural) const {
  // Mean per-image relative L2 distance.
  const std::int64_t n = natural.dim(0);
  const std::int64_t stride = natural.numel() / n;
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double diff = 0.0, base = 0.0;
    const float* pa = adversarial.data() + i * stride;
    const float* pn = natural.data() + i * stride;
    for (std::int64_t j = 0; j < stride; ++j) {
      const double d = static_cast<double>(pa[j]) - pn[j];
      diff += d * d;
      base += static_cast<double>(pn[j]) * pn[j];
    }
    acc += base > 0 ? std::sqrt(diff / base) : std::sqrt(diff);
  }
  return acc / static_cast<double>(n);
}

}  // namespace blurnet::attack
