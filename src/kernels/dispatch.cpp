#include "src/kernels/dispatch.h"

#include <cmath>

#include "src/kernels/simd_kernels.h"

namespace blurnet::kernels {

namespace {

// ---- scalar reference implementations ---------------------------------------
// These are the pre-dispatch loops, verbatim: the scalar target must stay
// bit-for-bit the numerics every PR before this one shipped.

void gemm_microtile_scalar(std::int64_t kc, const float* ap, const float* b,
                           std::int64_t ldb, float* acc) {
  constexpr std::int64_t mr = 4;
  // Accumulate into a local tile, not through `acc`: the compiler can see
  // the local never aliases ap/b, which is what lets it keep the 8-wide
  // j loop auto-vectorized (through the pointer parameter it emits scalar
  // code and the whole target runs ~5x slower).
  float local[mr * kGemmNr] = {};
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float* arow = ap + kk * mr;
    const float* brow = b + kk * ldb;
    for (std::int64_t i = 0; i < mr; ++i) {
      const float av = arow[i];
      float* crow = local + i * kGemmNr;
      for (std::int64_t j = 0; j < kGemmNr; ++j) crow[j] += av * brow[j];
    }
  }
  for (std::int64_t i = 0; i < mr * kGemmNr; ++i) acc[i] = local[i];
}

void tap_row_scalar(const float* src, std::int64_t stride, const float* ker,
                    int kh, int kw, float* dst, std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    double acc = 0.0;
    for (int fy = 0; fy < kh; ++fy) {
      const float* row = src + fy * stride + i;
      for (int fx = 0; fx < kw; ++fx) {
        acc += static_cast<double>(ker[fy * kw + fx]) * row[fx];
      }
    }
    dst[i] = static_cast<float>(acc);
  }
}

void warp_row_scalar(const float* src, std::int64_t h, std::int64_t w,
                     const WarpCoeffs& t, std::int64_t y, float* dst) {
  for (std::int64_t xx = 0; xx < w; ++xx) {
    const double in_x = t.m00 * xx + t.m01 * y + t.tx;
    const double in_y = t.m10 * xx + t.m11 * y + t.ty;
    const std::int64_t x0 = static_cast<std::int64_t>(std::floor(in_x));
    const std::int64_t y0 = static_cast<std::int64_t>(std::floor(in_y));
    const double fx = in_x - x0;
    const double fy = in_y - y0;
    double acc = 0.0;
    for (int dyi = 0; dyi <= 1; ++dyi) {
      const std::int64_t sy = y0 + dyi;
      if (sy < 0 || sy >= h) continue;
      const double wy = dyi ? fy : 1.0 - fy;
      for (int dxi = 0; dxi <= 1; ++dxi) {
        const std::int64_t sx = x0 + dxi;
        if (sx < 0 || sx >= w) continue;
        const double wx = dxi ? fx : 1.0 - fx;
        acc += wy * wx * src[sy * w + sx];
      }
    }
    dst[xx] = static_cast<float>(acc);
  }
}

constexpr GemmMicrokernel kGemmScalar{4, /*fused=*/false, gemm_microtile_scalar};
#if defined(BLURNET_HAVE_AVX2_KERNELS)
constexpr GemmMicrokernel kGemmAvx2{8, /*fused=*/true,
                                    detail::gemm_microtile_avx2};
#endif
#if defined(BLURNET_HAVE_NEON_KERNELS)
constexpr GemmMicrokernel kGemmNeon{4, /*fused=*/true,
                                    detail::gemm_microtile_neon};
#endif

}  // namespace

namespace detail {

const Dct8Table& dct8_table() {
  static const Dct8Table table = [] {
    // Launder cos through a volatile pointer so the compiler cannot
    // constant-fold the table (a compile-time MPFR fold could disagree in
    // the last bit with the runtime libm that signal::dct1d_into calls,
    // breaking the scalar==simd bitwise contract).
    double (*volatile cos_fn)(double) = std::cos;
    Dct8Table t;
    constexpr int n = 8;
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < n; ++k) {
        t.cosv[i * n + k] = cos_fn(M_PI * (2.0 * i + 1.0) * k / (2.0 * n));
      }
    }
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < n; ++k) t.cosvT[k * n + i] = t.cosv[i * n + k];
    }
    t.scale0 = std::sqrt(1.0 / n);
    t.scale = std::sqrt(2.0 / n);
    return t;
  }();
  return table;
}

}  // namespace detail

const GemmMicrokernel& gemm_microkernel(util::KernelTarget target) {
  switch (target) {
    case util::KernelTarget::kAvx2:
#if defined(BLURNET_HAVE_AVX2_KERNELS)
      return kGemmAvx2;
#else
      break;
#endif
    case util::KernelTarget::kNeon:
#if defined(BLURNET_HAVE_NEON_KERNELS)
      return kGemmNeon;
#else
      break;
#endif
    case util::KernelTarget::kScalar:
      break;
  }
  return kGemmScalar;
}

TapRowFn tap_row(util::KernelTarget target) {
  switch (target) {
    case util::KernelTarget::kAvx2:
#if defined(BLURNET_HAVE_AVX2_KERNELS)
      return detail::tap_row_avx2;
#else
      break;
#endif
    case util::KernelTarget::kNeon:
#if defined(BLURNET_HAVE_NEON_KERNELS)
      return detail::tap_row_neon;
#else
      break;
#endif
    case util::KernelTarget::kScalar:
      break;
  }
  return tap_row_scalar;
}

WarpRowFn warp_row(util::KernelTarget target) {
#if defined(BLURNET_HAVE_AVX2_KERNELS)
  if (target == util::KernelTarget::kAvx2) return detail::warp_row_avx2;
#endif
  (void)target;  // neon: no specialization, scalar numerics are the contract
  return warp_row_scalar;
}

Median3RowFn median3_row(util::KernelTarget target) {
#if defined(BLURNET_HAVE_AVX2_KERNELS)
  if (target == util::KernelTarget::kAvx2) return detail::median3_row_avx2;
#endif
#if defined(BLURNET_HAVE_NEON_KERNELS)
  if (target == util::KernelTarget::kNeon) return detail::median3_row_neon;
#endif
  (void)target;
  return nullptr;  // callers keep the nth_element path
}

Dct8x8Fn dct8x8(util::KernelTarget target, bool inverse) {
#if defined(BLURNET_HAVE_AVX2_KERNELS)
  if (target == util::KernelTarget::kAvx2) {
    return inverse ? detail::dct8x8_inverse_avx2 : detail::dct8x8_forward_avx2;
  }
#endif
  (void)target;
  (void)inverse;
  return nullptr;  // callers keep the generic signal::dct2d path
}

}  // namespace blurnet::kernels
