// AVX2+FMA kernels. This translation unit is compiled with -mavx2 -mfma
// (CMake sets the flags and BLURNET_HAVE_AVX2_KERNELS per-file on x86-64)
// and is one of the two files allowed to use raw intrinsics (tools/lint.py
// `simd-confinement`). Dispatch never routes here unless the host probe
// reported AVX2+FMA, so no function below needs its own runtime check.
//
// Numerics:
//   * gemm_microtile_avx2 accumulates with _mm256_fmadd_ps — one rounding
//     per term. Bitwise-deterministic, bitwise-modelled by
//     linalg::sgemm_reference_fused, but NOT bit-equal to the scalar
//     two-rounding microtile (the documented per-target GEMM contract).
//   * every other kernel reproduces the scalar double-precision op order
//     exactly (no FMA, no reassociation) and is bit-equal to scalar; the
//     scalar remainder loops below are verbatim copies of the reference
//     loops so vector body + tail stay one numeric family. The global
//     -ffp-contract=off keeps the compiler from fusing those tails even
//     though this TU enables -mfma.
#include "src/kernels/simd_kernels.h"

#if defined(BLURNET_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <limits>

namespace blurnet::kernels::detail {

// ---- GEMM 8x8 microtile -----------------------------------------------------

void gemm_microtile_avx2(std::int64_t kc, const float* ap, const float* b,
                         std::int64_t ldb, float* acc) {
  __m256 c0 = _mm256_setzero_ps();
  __m256 c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps();
  __m256 c3 = _mm256_setzero_ps();
  __m256 c4 = _mm256_setzero_ps();
  __m256 c5 = _mm256_setzero_ps();
  __m256 c6 = _mm256_setzero_ps();
  __m256 c7 = _mm256_setzero_ps();
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const __m256 bv = _mm256_loadu_ps(b + kk * ldb);
    const float* arow = ap + kk * 8;
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 0), bv, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 1), bv, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 2), bv, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 3), bv, c3);
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 4), bv, c4);
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 5), bv, c5);
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 6), bv, c6);
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + 7), bv, c7);
  }
  _mm256_storeu_ps(acc + 0, c0);
  _mm256_storeu_ps(acc + 8, c1);
  _mm256_storeu_ps(acc + 16, c2);
  _mm256_storeu_ps(acc + 24, c3);
  _mm256_storeu_ps(acc + 32, c4);
  _mm256_storeu_ps(acc + 40, c5);
  _mm256_storeu_ps(acc + 48, c6);
  _mm256_storeu_ps(acc + 56, c7);
}

// ---- convolution tap rows ---------------------------------------------------

void tap_row_avx2(const float* src, std::int64_t stride, const float* ker,
                  int kh, int kw, float* dst, std::int64_t count) {
  std::int64_t i = 0;
  // Four output pixels per iteration, each lane an independent double
  // accumulator walking the taps in the scalar (fy, fx) order.
  for (; i + 4 <= count; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (int fy = 0; fy < kh; ++fy) {
      const float* row = src + fy * stride + i;
      for (int fx = 0; fx < kw; ++fx) {
        const __m256d tap =
            _mm256_set1_pd(static_cast<double>(ker[fy * kw + fx]));
        const __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(row + fx));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(tap, v));
      }
    }
    _mm_storeu_ps(dst + i, _mm256_cvtpd_ps(acc));
  }
  for (; i < count; ++i) {
    double acc = 0.0;
    for (int fy = 0; fy < kh; ++fy) {
      const float* row = src + fy * stride + i;
      for (int fx = 0; fx < kw; ++fx) {
        acc += static_cast<double>(ker[fy * kw + fx]) * row[fx];
      }
    }
    dst[i] = static_cast<float>(acc);
  }
}

// ---- affine warp rows -------------------------------------------------------

void warp_row_avx2(const float* src, std::int64_t h, std::int64_t w,
                   const WarpCoeffs& t, std::int64_t y, float* dst) {
  // The gather index is int32: bail to the scalar loop for planes whose
  // flat size could overflow it (never hit by real workloads).
  if (h * w > std::numeric_limits<std::int32_t>::max() ||
      h > std::numeric_limits<std::int32_t>::max() ||
      w > std::numeric_limits<std::int32_t>::max()) {
    for (std::int64_t xx = 0; xx < w; ++xx) {
      const double in_x = t.m00 * xx + t.m01 * y + t.tx;
      const double in_y = t.m10 * xx + t.m11 * y + t.ty;
      const std::int64_t x0 = static_cast<std::int64_t>(std::floor(in_x));
      const std::int64_t y0 = static_cast<std::int64_t>(std::floor(in_y));
      const double fx = in_x - x0;
      const double fy = in_y - y0;
      double acc = 0.0;
      for (int dyi = 0; dyi <= 1; ++dyi) {
        const std::int64_t sy = y0 + dyi;
        if (sy < 0 || sy >= h) continue;
        const double wy = dyi ? fy : 1.0 - fy;
        for (int dxi = 0; dxi <= 1; ++dxi) {
          const std::int64_t sx = x0 + dxi;
          if (sx < 0 || sx >= w) continue;
          const double wx = dxi ? fx : 1.0 - fx;
          acc += wy * wx * src[sy * w + sx];
        }
      }
      dst[xx] = static_cast<float>(acc);
    }
    return;
  }

  // m01*y / m11*y are loop-invariant: hoisting them reuses the exact
  // product the scalar loop recomputes per pixel, so the association
  // ((m00*xx) + (m01*y)) + tx is preserved bit for bit.
  const __m256d vm00 = _mm256_set1_pd(t.m00);
  const __m256d vm10 = _mm256_set1_pd(t.m10);
  const __m256d vm01y = _mm256_set1_pd(t.m01 * static_cast<double>(y));
  const __m256d vm11y = _mm256_set1_pd(t.m11 * static_cast<double>(y));
  const __m256d vtx = _mm256_set1_pd(t.tx);
  const __m256d vty = _mm256_set1_pd(t.ty);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m128i vh = _mm_set1_epi32(static_cast<std::int32_t>(h));
  const __m128i vw = _mm_set1_epi32(static_cast<std::int32_t>(w));
  const __m128i minus1 = _mm_set1_epi32(-1);
  const __m128i one32 = _mm_set1_epi32(1);

  std::int64_t xx = 0;
  for (; xx + 4 <= w; xx += 4) {
    const __m256d xv =
        _mm256_setr_pd(static_cast<double>(xx), static_cast<double>(xx + 1),
                       static_cast<double>(xx + 2), static_cast<double>(xx + 3));
    const __m256d in_x =
        _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(vm00, xv), vm01y), vtx);
    const __m256d in_y =
        _mm256_add_pd(_mm256_add_pd(_mm256_mul_pd(vm10, xv), vm11y), vty);
    const __m256d x0d = _mm256_floor_pd(in_x);
    const __m256d y0d = _mm256_floor_pd(in_y);
    const __m256d fx = _mm256_sub_pd(in_x, x0d);
    const __m256d fy = _mm256_sub_pd(in_y, y0d);
    // Integral doubles convert exactly; out-of-int32-range (and NaN)
    // lanes become INT32_MIN, which the bounds masks reject — the same
    // pixels the scalar loop skips via its int64 range checks.
    const __m128i x0i = _mm256_cvtpd_epi32(x0d);
    const __m128i y0i = _mm256_cvtpd_epi32(y0d);
    const __m256d wx0 = _mm256_sub_pd(one, fx);
    const __m256d wy0 = _mm256_sub_pd(one, fy);

    __m256d acc = _mm256_setzero_pd();
    for (int dyi = 0; dyi <= 1; ++dyi) {
      const __m128i sy = dyi ? _mm_add_epi32(y0i, one32) : y0i;
      const __m256d wy = dyi ? fy : wy0;
      const __m128i sy_ok =
          _mm_and_si128(_mm_cmpgt_epi32(sy, minus1), _mm_cmpgt_epi32(vh, sy));
      for (int dxi = 0; dxi <= 1; ++dxi) {
        const __m128i sx = dxi ? _mm_add_epi32(x0i, one32) : x0i;
        const __m256d wx = dxi ? fx : wx0;
        const __m128i ok = _mm_and_si128(
            sy_ok,
            _mm_and_si128(_mm_cmpgt_epi32(sx, minus1), _mm_cmpgt_epi32(vw, sx)));
        const __m128i idx = _mm_add_epi32(_mm_mullo_epi32(sy, vw), sx);
        const __m128 gathered = _mm_mask_i32gather_ps(
            _mm_setzero_ps(), src, idx, _mm_castsi128_ps(ok), 4);
        const __m256d vals = _mm256_cvtps_pd(gathered);
        // term = (wy*wx) * src, the scalar association; masked lanes are
        // forced to +0.0, bit-equal to the scalar skip (the accumulator
        // can never be -0.0, so adding +0.0 is the identity).
        __m256d term = _mm256_mul_pd(_mm256_mul_pd(wy, wx), vals);
        const __m256d okd = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(ok));
        term = _mm256_and_pd(term, okd);
        acc = _mm256_add_pd(acc, term);
      }
    }
    _mm_storeu_ps(dst + xx, _mm256_cvtpd_ps(acc));
  }
  for (; xx < w; ++xx) {
    const double in_x = t.m00 * xx + t.m01 * y + t.tx;
    const double in_y = t.m10 * xx + t.m11 * y + t.ty;
    const std::int64_t x0 = static_cast<std::int64_t>(std::floor(in_x));
    const std::int64_t y0 = static_cast<std::int64_t>(std::floor(in_y));
    const double fx = in_x - x0;
    const double fy = in_y - y0;
    double acc = 0.0;
    for (int dyi = 0; dyi <= 1; ++dyi) {
      const std::int64_t sy = y0 + dyi;
      if (sy < 0 || sy >= h) continue;
      const double wy = dyi ? fy : 1.0 - fy;
      for (int dxi = 0; dxi <= 1; ++dxi) {
        const std::int64_t sx = x0 + dxi;
        if (sx < 0 || sx >= w) continue;
        const double wx = dxi ? fx : 1.0 - fx;
        acc += wy * wx * src[sy * w + sx];
      }
    }
    dst[xx] = static_cast<float>(acc);
  }
}

// ---- 3x3 median rows --------------------------------------------------------

namespace {

inline void sort2(__m256& a, __m256& b) {
  const __m256 lo = _mm256_min_ps(a, b);
  b = _mm256_max_ps(a, b);
  a = lo;
}

inline void sort2s(float& a, float& b) {
  const float lo = a < b ? a : b;
  b = a < b ? b : a;
  a = lo;
}

// Paeth's 19-exchange median-of-9 network: p4 ends up the exact 5th order
// statistic, so the result equals the nth_element path for finite inputs.
template <typename V, void (*Op)(V&, V&)>
inline V median9(V p0, V p1, V p2, V p3, V p4, V p5, V p6, V p7, V p8) {
  Op(p1, p2); Op(p4, p5); Op(p7, p8);
  Op(p0, p1); Op(p3, p4); Op(p6, p7);
  Op(p1, p2); Op(p4, p5); Op(p7, p8);
  Op(p0, p3); Op(p5, p8); Op(p4, p7);
  Op(p3, p6); Op(p1, p4); Op(p2, p5);
  Op(p4, p7); Op(p4, p2); Op(p6, p4);
  Op(p4, p2);
  return p4;
}

}  // namespace

void median3_row_avx2(const float* r0, const float* r1, const float* r2,
                      float* dst, std::int64_t count) {
  std::int64_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256 m = median9<__m256, sort2>(
        _mm256_loadu_ps(r0 + i), _mm256_loadu_ps(r0 + i + 1),
        _mm256_loadu_ps(r0 + i + 2), _mm256_loadu_ps(r1 + i),
        _mm256_loadu_ps(r1 + i + 1), _mm256_loadu_ps(r1 + i + 2),
        _mm256_loadu_ps(r2 + i), _mm256_loadu_ps(r2 + i + 1),
        _mm256_loadu_ps(r2 + i + 2));
    _mm256_storeu_ps(dst + i, m);
  }
  for (; i < count; ++i) {
    dst[i] = median9<float, sort2s>(r0[i], r0[i + 1], r0[i + 2], r1[i],
                                    r1[i + 1], r1[i + 2], r2[i], r2[i + 1],
                                    r2[i + 2]);
  }
}

// ---- 8x8 DCT-II -------------------------------------------------------------
// Rows then columns, exactly like signal::transform2d: each output element
// is an ascending fold over its 8 inputs with separate mul and add (no
// FMA), using the shared runtime cosine table, so results are bit-equal to
// the generic dct2d/idct2d path. SIMD width comes from computing 4 output
// elements (lanes) at once, never from reordering a fold.

void dct8x8_forward_avx2(const double* in, double* out) {
  const Dct8Table& tab = dct8_table();
  const __m256d scale_lo =
      _mm256_setr_pd(tab.scale0, tab.scale, tab.scale, tab.scale);
  const __m256d scale_hi = _mm256_set1_pd(tab.scale);
  double tmp[64];
  // Rows: tmp[y][k] = scale_k * sum_i in[y][i] * cos[i][k].
  for (int y = 0; y < 8; ++y) {
    const double* x = in + y * 8;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (int i = 0; i < 8; ++i) {
      const __m256d xv = _mm256_set1_pd(x[i]);
      acc0 = _mm256_add_pd(
          acc0, _mm256_mul_pd(xv, _mm256_loadu_pd(tab.cosv + i * 8)));
      acc1 = _mm256_add_pd(
          acc1, _mm256_mul_pd(xv, _mm256_loadu_pd(tab.cosv + i * 8 + 4)));
    }
    _mm256_storeu_pd(tmp + y * 8, _mm256_mul_pd(scale_lo, acc0));
    _mm256_storeu_pd(tmp + y * 8 + 4, _mm256_mul_pd(scale_hi, acc1));
  }
  // Columns: out[k][c] = scale_k * sum_y tmp[y][c] * cos[y][k].
  for (int k = 0; k < 8; ++k) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (int y = 0; y < 8; ++y) {
      const __m256d cv = _mm256_set1_pd(tab.cosv[y * 8 + k]);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(tmp + y * 8), cv));
      acc1 = _mm256_add_pd(acc1,
                           _mm256_mul_pd(_mm256_loadu_pd(tmp + y * 8 + 4), cv));
    }
    const __m256d sk = _mm256_set1_pd(k == 0 ? tab.scale0 : tab.scale);
    _mm256_storeu_pd(out + k * 8, _mm256_mul_pd(sk, acc0));
    _mm256_storeu_pd(out + k * 8 + 4, _mm256_mul_pd(sk, acc1));
  }
}

void dct8x8_inverse_avx2(const double* in, double* out) {
  const Dct8Table& tab = dct8_table();
  double tmp[64];
  // Rows: tmp[y][i] = scale0*x[0] + sum_{k>=1} (scale*x[k]) * cos[i][k].
  for (int y = 0; y < 8; ++y) {
    const double* x = in + y * 8;
    __m256d acc0 = _mm256_set1_pd(tab.scale0 * x[0]);
    __m256d acc1 = acc0;
    for (int k = 1; k < 8; ++k) {
      const __m256d sx = _mm256_set1_pd(tab.scale * x[k]);
      acc0 = _mm256_add_pd(
          acc0, _mm256_mul_pd(sx, _mm256_loadu_pd(tab.cosvT + k * 8)));
      acc1 = _mm256_add_pd(
          acc1, _mm256_mul_pd(sx, _mm256_loadu_pd(tab.cosvT + k * 8 + 4)));
    }
    _mm256_storeu_pd(tmp + y * 8, acc0);
    _mm256_storeu_pd(tmp + y * 8 + 4, acc1);
  }
  // Columns: out[i][c] = scale0*tmp[0][c] + sum_{k>=1} (scale*tmp[k][c]) * cos[i][k].
  const __m256d s0 = _mm256_set1_pd(tab.scale0);
  const __m256d s = _mm256_set1_pd(tab.scale);
  for (int i = 0; i < 8; ++i) {
    __m256d acc0 = _mm256_mul_pd(s0, _mm256_loadu_pd(tmp));
    __m256d acc1 = _mm256_mul_pd(s0, _mm256_loadu_pd(tmp + 4));
    for (int k = 1; k < 8; ++k) {
      const __m256d cv = _mm256_set1_pd(tab.cosv[i * 8 + k]);
      acc0 = _mm256_add_pd(
          acc0, _mm256_mul_pd(_mm256_mul_pd(s, _mm256_loadu_pd(tmp + k * 8)), cv));
      acc1 = _mm256_add_pd(
          acc1,
          _mm256_mul_pd(_mm256_mul_pd(s, _mm256_loadu_pd(tmp + k * 8 + 4)), cv));
    }
    _mm256_storeu_pd(out + i * 8, acc0);
    _mm256_storeu_pd(out + i * 8 + 4, acc1);
  }
}

}  // namespace blurnet::kernels::detail

#endif  // BLURNET_HAVE_AVX2_KERNELS
