// AArch64 NEON (ASIMD) kernels. Compiled only on aarch64 builds (CMake
// sets BLURNET_HAVE_NEON_KERNELS there); one of the two files allowed to
// use raw intrinsics (tools/lint.py `simd-confinement`).
//
// Numerics mirror the AVX2 TU: the GEMM microtile uses fused
// multiply-add (vfmaq, one rounding per term — the per-target GEMM
// contract, bitwise-modelled by linalg::sgemm_reference_fused); the tap
// and median kernels reproduce the scalar op order exactly and are
// bit-equal to the scalar target. Warp and DCT have no NEON
// specialization — dispatch falls back to scalar there.
#include "src/kernels/simd_kernels.h"

#if defined(BLURNET_HAVE_NEON_KERNELS)

#include <arm_neon.h>

#include <cstdint>

namespace blurnet::kernels::detail {

// ---- GEMM 4x8 microtile (two 4x4 quads) -------------------------------------

void gemm_microtile_neon(std::int64_t kc, const float* ap, const float* b,
                         std::int64_t ldb, float* acc) {
  float32x4_t c00 = vdupq_n_f32(0.0f), c01 = vdupq_n_f32(0.0f);
  float32x4_t c10 = vdupq_n_f32(0.0f), c11 = vdupq_n_f32(0.0f);
  float32x4_t c20 = vdupq_n_f32(0.0f), c21 = vdupq_n_f32(0.0f);
  float32x4_t c30 = vdupq_n_f32(0.0f), c31 = vdupq_n_f32(0.0f);
  for (std::int64_t kk = 0; kk < kc; ++kk) {
    const float32x4_t av = vld1q_f32(ap + kk * 4);
    const float32x4_t b0 = vld1q_f32(b + kk * ldb);
    const float32x4_t b1 = vld1q_f32(b + kk * ldb + 4);
    c00 = vfmaq_laneq_f32(c00, b0, av, 0);
    c01 = vfmaq_laneq_f32(c01, b1, av, 0);
    c10 = vfmaq_laneq_f32(c10, b0, av, 1);
    c11 = vfmaq_laneq_f32(c11, b1, av, 1);
    c20 = vfmaq_laneq_f32(c20, b0, av, 2);
    c21 = vfmaq_laneq_f32(c21, b1, av, 2);
    c30 = vfmaq_laneq_f32(c30, b0, av, 3);
    c31 = vfmaq_laneq_f32(c31, b1, av, 3);
  }
  vst1q_f32(acc + 0, c00);
  vst1q_f32(acc + 4, c01);
  vst1q_f32(acc + 8, c10);
  vst1q_f32(acc + 12, c11);
  vst1q_f32(acc + 16, c20);
  vst1q_f32(acc + 20, c21);
  vst1q_f32(acc + 24, c30);
  vst1q_f32(acc + 28, c31);
}

// ---- convolution tap rows ---------------------------------------------------

void tap_row_neon(const float* src, std::int64_t stride, const float* ker,
                  int kh, int kw, float* dst, std::int64_t count) {
  std::int64_t i = 0;
  // Two output pixels per iteration: float64x2 lanes are independent
  // double accumulators walking the taps in the scalar (fy, fx) order
  // with separate mul and add (no fused contraction).
  for (; i + 2 <= count; i += 2) {
    float64x2_t acc = vdupq_n_f64(0.0);
    for (int fy = 0; fy < kh; ++fy) {
      const float* row = src + fy * stride + i;
      for (int fx = 0; fx < kw; ++fx) {
        const float64x2_t tap = vdupq_n_f64(static_cast<double>(ker[fy * kw + fx]));
        const float64x2_t v = vcvt_f64_f32(vld1_f32(row + fx));
        acc = vaddq_f64(acc, vmulq_f64(tap, v));
      }
    }
    const float32x2_t out = vcvt_f32_f64(acc);
    vst1_f32(dst + i, out);
  }
  for (; i < count; ++i) {
    double acc = 0.0;
    for (int fy = 0; fy < kh; ++fy) {
      const float* row = src + fy * stride + i;
      for (int fx = 0; fx < kw; ++fx) {
        acc += static_cast<double>(ker[fy * kw + fx]) * row[fx];
      }
    }
    dst[i] = static_cast<float>(acc);
  }
}

// ---- 3x3 median rows --------------------------------------------------------

namespace {

inline void sort2(float32x4_t& a, float32x4_t& b) {
  const float32x4_t lo = vminq_f32(a, b);
  b = vmaxq_f32(a, b);
  a = lo;
}

inline void sort2s(float& a, float& b) {
  const float lo = a < b ? a : b;
  b = a < b ? b : a;
  a = lo;
}

// Paeth's 19-exchange median-of-9 network (same as the AVX2 TU).
template <typename V, void (*Op)(V&, V&)>
inline V median9(V p0, V p1, V p2, V p3, V p4, V p5, V p6, V p7, V p8) {
  Op(p1, p2); Op(p4, p5); Op(p7, p8);
  Op(p0, p1); Op(p3, p4); Op(p6, p7);
  Op(p1, p2); Op(p4, p5); Op(p7, p8);
  Op(p0, p3); Op(p5, p8); Op(p4, p7);
  Op(p3, p6); Op(p1, p4); Op(p2, p5);
  Op(p4, p7); Op(p4, p2); Op(p6, p4);
  Op(p4, p2);
  return p4;
}

}  // namespace

void median3_row_neon(const float* r0, const float* r1, const float* r2,
                      float* dst, std::int64_t count) {
  std::int64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const float32x4_t m = median9<float32x4_t, sort2>(
        vld1q_f32(r0 + i), vld1q_f32(r0 + i + 1), vld1q_f32(r0 + i + 2),
        vld1q_f32(r1 + i), vld1q_f32(r1 + i + 1), vld1q_f32(r1 + i + 2),
        vld1q_f32(r2 + i), vld1q_f32(r2 + i + 1), vld1q_f32(r2 + i + 2));
    vst1q_f32(dst + i, m);
  }
  for (; i < count; ++i) {
    dst[i] = median9<float, sort2s>(r0[i], r0[i + 1], r0[i + 2], r1[i],
                                    r1[i + 1], r1[i + 2], r2[i], r2[i + 1],
                                    r2[i + 2]);
  }
}

}  // namespace blurnet::kernels::detail

#endif  // BLURNET_HAVE_NEON_KERNELS
