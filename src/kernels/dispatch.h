// Per-ISA kernel tables behind util::active_kernel_target().
//
// Each hot loop has one portable entry point here that returns a function
// pointer (or a small descriptor) for a given target. Scalar
// implementations live in dispatch.cpp and are the reference numerics;
// the ISA translation units (simd_kernels_avx2.cpp / simd_kernels_neon.cpp,
// the only files allowed to touch raw intrinsics — enforced by
// tools/lint.py) register themselves behind BLURNET_HAVE_*_KERNELS.
//
// Numerics, per kernel:
//   * gemm_microkernel — float32 ascending-k fold per output element. The
//     scalar entry is two-rounding mul+add; AVX2/NEON use hardware FMA
//     (one rounding per term). Within one target results are bitwise
//     deterministic; across targets GEMM low bits may differ. The fused
//     targets are bitwise-modelled by linalg::sgemm_reference_fused.
//   * everything else (tap rows, warp rows, median3, dct8x8) reproduces
//     the scalar double-accumulation order exactly and is bitwise equal
//     to scalar on every target.
//
// A kernel accessor may return nullptr for a target with no specialized
// implementation (e.g. warp on neon): callers must fall back to their
// scalar path. gemm_microkernel() always returns a usable descriptor.
#pragma once

#include <cstdint>

#include "src/util/cpu_caps.h"

namespace blurnet::kernels {

// ---- GEMM microtile ---------------------------------------------------------

/// Microtile column width; must match linalg::kNr (the B pack width).
inline constexpr std::int64_t kGemmNr = 8;

/// Upper bound on GemmMicrokernel::mr across all targets; drivers size
/// their writeback accumulator as float[kGemmMaxMr * kGemmNr].
inline constexpr std::int64_t kGemmMaxMr = 8;

/// Register-blocked microtile: acc[mr][kGemmNr] (row-major, overwritten —
/// the kernel zero-initializes) = sum over kk<kc of
/// ap[kk*mr + i] * b[kk*ldb + j].
/// `ap` is a packed A panel (mr floats per k step, zero-padded rows);
/// `b` is either a packed kGemmNr-wide panel (ldb == kGemmNr) or a
/// direct row-major slice of B (ldb == original ldb, full tiles only).
struct GemmMicrokernel {
  std::int64_t mr;  ///< microtile rows; the driver packs A panels this tall
  bool fused;       ///< true: hardware FMA accumulation (avx2/neon)
  void (*fn)(std::int64_t kc, const float* ap, const float* b,
             std::int64_t ldb, float* acc);
};

/// Never null; scalar has mr == linalg::kMr (4), fused targets mr == 8 (avx2)
/// or 4 (neon).
const GemmMicrokernel& gemm_microkernel(util::KernelTarget target);

// ---- convolution tap rows ---------------------------------------------------

/// dst[i] = (float) sum over (fy<kh, fx<kw), ascending, of
///          (double)ker[fy*kw + fx] * src[fy*stride + i + fx]
/// for i in [0, count). Exactly the interior loop of signal::filter_plane
/// and the padded depthwise fast path: double accumulator, taps in
/// ascending (fy, fx) order, one final round to float.
using TapRowFn = void (*)(const float* src, std::int64_t stride,
                          const float* ker, int kh, int kw, float* dst,
                          std::int64_t count);

/// Never null.
TapRowFn tap_row(util::KernelTarget target);

// ---- affine warp rows -------------------------------------------------------

/// Row-major 2x3 inverse-map coefficients: source coords of output pixel
/// (xx, y) are in_x = m00*xx + m01*y + tx, in_y = m10*xx + m11*y + ty,
/// evaluated in double in exactly that association order.
struct WarpCoeffs {
  double m00, m01, tx;
  double m10, m11, ty;
};

/// Bilinear gather+lerp for one output row y of a [h, w] plane:
/// dst[xx] = (float) sum of wy*wx*src[sy*w + sx] over the 4 taps in
/// (dy, dx) ascending order, out-of-bounds taps skipped (contribute +0).
using WarpRowFn = void (*)(const float* src, std::int64_t h, std::int64_t w,
                           const WarpCoeffs& t, std::int64_t y, float* dst);

/// Never null.
WarpRowFn warp_row(util::KernelTarget target);

// ---- 3x3 median rows --------------------------------------------------------

/// dst[i] = median of the 9 floats {r0,r1,r2}[i..i+2] for i in [0, count).
/// r0/r1/r2 are rows of a replicate-padded plane (each at least count+2
/// floats long). Exact order statistic for finite inputs (min/max sorting
/// network), matching std::nth_element.
using Median3RowFn = void (*)(const float* r0, const float* r1,
                              const float* r2, float* dst,
                              std::int64_t count);

/// nullptr for targets without a specialization (callers keep the
/// nth_element path).
Median3RowFn median3_row(util::KernelTarget target);

// ---- 8x8 DCT-II -------------------------------------------------------------

/// Forward/inverse 8x8 type-II DCT on doubles, rows then columns, with
/// the exact fold order and cosine values of signal::dct2d/idct2d (the
/// cosine table is built once at runtime with the same libm calls, so
/// results are bitwise equal to the loop-computed scalar path).
using Dct8x8Fn = void (*)(const double* in, double* out);

/// nullptr for targets without a specialization (callers keep the
/// generic signal::dct2d path).
Dct8x8Fn dct8x8(util::KernelTarget target, bool inverse);

}  // namespace blurnet::kernels
