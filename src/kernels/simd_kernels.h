// Internal declarations shared between dispatch.cpp and the ISA
// translation units. Intentionally intrinsic-free: this header is
// included from portable code, so it must never pull <immintrin.h> /
// <arm_neon.h> (tools/lint.py enforces that only *_kernels_{avx2,neon}.cpp
// may). The symbols below are only defined when the matching
// BLURNET_HAVE_*_KERNELS macro was set for the ISA translation unit.
#pragma once

#include <cstdint>

#include "src/kernels/dispatch.h"

namespace blurnet::kernels::detail {

// Shared 8x8 DCT-II constants. Built once at runtime with the exact libm
// calls and argument expression of signal::dct1d_into (a volatile function
// pointer defeats compile-time cos folding, which could otherwise diverge
// from the runtime libm the scalar path uses).
struct Dct8Table {
  double cosv[64];   ///< cosv[i * 8 + k] = cos(M_PI * (2i+1) * k / 16)
  double cosvT[64];  ///< transposed copy: cosvT[k * 8 + i] = cosv[i * 8 + k]
  double scale0;     ///< sqrt(1/8)
  double scale;      ///< sqrt(2/8)
};
const Dct8Table& dct8_table();

#if defined(BLURNET_HAVE_AVX2_KERNELS)
void gemm_microtile_avx2(std::int64_t kc, const float* ap, const float* b,
                         std::int64_t ldb, float* acc);
void tap_row_avx2(const float* src, std::int64_t stride, const float* ker,
                  int kh, int kw, float* dst, std::int64_t count);
void warp_row_avx2(const float* src, std::int64_t h, std::int64_t w,
                   const WarpCoeffs& t, std::int64_t y, float* dst);
void median3_row_avx2(const float* r0, const float* r1, const float* r2,
                      float* dst, std::int64_t count);
void dct8x8_forward_avx2(const double* in, double* out);
void dct8x8_inverse_avx2(const double* in, double* out);
#endif

#if defined(BLURNET_HAVE_NEON_KERNELS)
void gemm_microtile_neon(std::int64_t kc, const float* ap, const float* b,
                         std::int64_t ldb, float* acc);
void tap_row_neon(const float* src, std::int64_t stride, const float* ker,
                  int kh, int kw, float* dst, std::int64_t count);
void median3_row_neon(const float* r0, const float* r1, const float* r2,
                      float* dst, std::int64_t count);
#endif

}  // namespace blurnet::kernels::detail
