#include "src/nn/model_io.h"

#include <map>
#include <stdexcept>

#include "src/util/serialize.h"

namespace blurnet::nn {

namespace {
constexpr std::uint32_t kMagic = 0x544e4c42;  // "BLNT"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_parameters(const std::string& path,
                     const std::vector<std::pair<std::string, autograd::Variable>>& params) {
  util::BinaryWriter writer(path);
  writer.write_u32(kMagic);
  writer.write_u32(kVersion);
  writer.write_u32(static_cast<std::uint32_t>(params.size()));
  for (const auto& [name, variable] : params) {
    writer.write_string(name);
    const auto& dims = variable.value().shape().dims();
    writer.write_i64_array(dims.data(), dims.size());
    writer.write_f32_array(variable.value().data(),
                           static_cast<std::size_t>(variable.value().numel()));
  }
  writer.close();
}

namespace {

void load_parameters_from(util::BinaryReader& reader, const std::string& source,
                          std::vector<std::pair<std::string, autograd::Variable>>& params) {
  if (reader.read_u32() != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in " + source);
  }
  if (reader.read_u32() != kVersion) {
    throw std::runtime_error("load_parameters: bad version in " + source);
  }
  const auto count = reader.read_u32();
  std::map<std::string, std::pair<tensor::Shape, std::vector<float>>> loaded;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = reader.read_string();
    auto dims = reader.read_i64_array();
    auto data = reader.read_f32_array();
    loaded.emplace(std::move(name),
                   std::make_pair(tensor::Shape(std::move(dims)), std::move(data)));
  }
  for (auto& [name, variable] : params) {
    const auto it = loaded.find(name);
    if (it == loaded.end()) {
      throw std::runtime_error("load_parameters: missing parameter " + name + " in " + source);
    }
    const auto& [shape, data] = it->second;
    if (shape != variable.value().shape()) {
      throw std::runtime_error("load_parameters: shape mismatch for " + name + " in " + source);
    }
    variable.mutable_value() = tensor::Tensor(shape, data);
  }
}

}  // namespace

void load_parameters(const std::string& path,
                     std::vector<std::pair<std::string, autograd::Variable>>& params) {
  util::BinaryReader reader(path);
  load_parameters_from(reader, path, params);
}

void load_parameters(const std::uint8_t* data, std::size_t size,
                     std::vector<std::pair<std::string, autograd::Variable>>& params) {
  util::BinaryReader reader(data, size, "<memory checkpoint>");
  load_parameters_from(reader, "<memory checkpoint>", params);
}

}  // namespace blurnet::nn
