// Optimizers. Adam matches the paper's training setup (β1=0.9, β2=0.999,
// ε=1e-8); SGD(+momentum) is provided for tests and comparisons. Both operate
// on leaf Variables and read the gradients accumulated by backward().
#pragma once

#include <vector>

#include "src/autograd/variable.h"

namespace blurnet::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;

  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  const std::vector<autograd::Variable>& parameters() const { return params_; }

 protected:
  std::vector<autograd::Variable> params_;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, double lr, double momentum = 0.0);
  void step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<tensor::Tensor> velocity_;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, double lr = 1e-3, double beta1 = 0.9,
       double beta2 = 0.999, double epsilon = 1e-8);
  void step() override;

  /// Reset moment estimates (used when re-targeting an attack).
  void reset_state();

 private:
  double lr_, beta1_, beta2_, epsilon_;
  std::int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

}  // namespace blurnet::nn
