#include "src/nn/lisa_cnn.h"

#include <stdexcept>

#include "src/nn/init.h"
#include "src/nn/model_io.h"
#include "src/tensor/ops.h"

namespace blurnet::nn {

using autograd::Variable;
using tensor::Shape;
using tensor::Tensor;

void LisaCnnConfig::validate() const {
  auto require_positive = [](int value, const char* field) {
    if (value <= 0) {
      throw std::invalid_argument(std::string("LisaCnnConfig: ") + field +
                                  " must be positive");
    }
  };
  // Symmetric k/2 padding assumes odd kernels; an even kernel silently
  // shifts the feature maps, so reject it outright.
  auto require_odd_kernel = [&](int value, const char* field) {
    require_positive(value, field);
    if (value % 2 == 0) {
      throw std::invalid_argument(std::string("LisaCnnConfig: ") + field +
                                  " must be odd (symmetric padding)");
    }
  };
  require_positive(num_classes, "num_classes");
  require_positive(image_size, "image_size");
  require_positive(in_channels, "in_channels");
  require_positive(conv1_filters, "conv1_filters");
  require_positive(conv2_filters, "conv2_filters");
  require_positive(conv3_filters, "conv3_filters");
  require_odd_kernel(conv1_kernel, "conv1_kernel");
  require_odd_kernel(conv2_kernel, "conv2_kernel");
  require_odd_kernel(conv3_kernel, "conv3_kernel");
  require_positive(conv1_stride, "conv1_stride");
  require_positive(conv2_stride, "conv2_stride");
  require_positive(conv3_stride, "conv3_stride");
  if (learnable_depthwise_kernel != 0) {
    require_odd_kernel(learnable_depthwise_kernel, "learnable_depthwise_kernel");
  }
  if (fixed_filter.placement != FilterPlacement::kNone) {
    require_odd_kernel(fixed_filter.kernel, "fixed_filter.kernel");
  }
}

LisaCnn::LisaCnn(LisaCnnConfig config) : config_(config) {
  config.validate();
  util::Rng rng(config.init_seed);

  auto conv_weight = [&](int filters, int channels, int kernel) {
    const std::int64_t fan_in = static_cast<std::int64_t>(channels) * kernel * kernel;
    return Variable::leaf(
        he_normal(Shape{filters, channels, kernel, kernel}, fan_in, rng), true);
  };
  conv1_w_ = conv_weight(config.conv1_filters, config.in_channels, config.conv1_kernel);
  conv1_b_ = Variable::leaf(Tensor::zeros(Shape::vec(config.conv1_filters)), true);
  conv2_w_ = conv_weight(config.conv2_filters, config.conv1_filters, config.conv2_kernel);
  conv2_b_ = Variable::leaf(Tensor::zeros(Shape::vec(config.conv2_filters)), true);
  conv3_w_ = conv_weight(config.conv3_filters, config.conv2_filters, config.conv3_kernel);
  conv3_b_ = Variable::leaf(Tensor::zeros(Shape::vec(config.conv3_filters)), true);

  // Spatial sizes after the three convolutions (symmetric padding k/2).
  auto out_size = [](std::int64_t in, int kernel, int stride) {
    const int pad = kernel / 2;
    return (in + 2 * pad - kernel) / stride + 1;
  };
  std::int64_t side = config.image_size;
  side = out_size(side, config.conv1_kernel, config.conv1_stride);
  side = out_size(side, config.conv2_kernel, config.conv2_stride);
  side = out_size(side, config.conv3_kernel, config.conv3_stride);
  flat_features_ = static_cast<std::int64_t>(config.conv3_filters) * side * side;

  fc_w_ = Variable::leaf(
      xavier_uniform(Shape::mat(flat_features_, config.num_classes), flat_features_,
                     config.num_classes, rng),
      true);
  fc_b_ = Variable::leaf(Tensor::zeros(Shape::vec(config.num_classes)), true);

  if (config.learnable_depthwise_kernel > 0) {
    dw_weight_ = Variable::leaf(
        identity_depthwise(config.conv1_filters, config.learnable_depthwise_kernel,
                           /*noise=*/0.01, rng),
        true);
  }
  if (config.fixed_filter.placement != FilterPlacement::kNone) {
    fixed_kernel_ = signal::make_blur_kernel(config.fixed_filter.kernel,
                                             config.fixed_filter.kind);
  }
}

Variable LisaCnn::apply_fixed_filter(const Variable& x) const {
  // A fixed blur is a depthwise convolution whose kernel is shared across
  // channels; express it as a constant per-channel kernel stack.
  const std::int64_t channels = x.shape()[1];
  const int k = config_.fixed_filter.kernel;
  Tensor stack(Shape{channels, k, k});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (int i = 0; i < k * k; ++i) stack[c * k * k + i] = fixed_kernel_[i];
  }
  return autograd::depthwise_conv2d_same(x, Variable::constant(stack), Variable());
}

ForwardResult LisaCnn::forward(const Variable& x) const {
  ForwardResult result;
  Variable h = x;
  if (config_.fixed_filter.placement == FilterPlacement::kInput) {
    h = apply_fixed_filter(h);
  }
  h = autograd::relu(autograd::conv2d(h, conv1_w_, conv1_b_, config_.conv1_stride,
                                      config_.conv1_kernel / 2));
  result.features_l1 = h;
  if (config_.fixed_filter.placement == FilterPlacement::kAfterLayer1) {
    h = apply_fixed_filter(h);
  }
  if (dw_weight_.defined()) {
    h = autograd::depthwise_conv2d_same(h, dw_weight_, Variable());
  }
  result.features_l1_filtered = h;

  h = autograd::relu(autograd::conv2d(h, conv2_w_, conv2_b_, config_.conv2_stride,
                                      config_.conv2_kernel / 2));
  result.features_l2 = h;
  if (config_.fixed_filter.placement == FilterPlacement::kAfterLayer2) {
    h = apply_fixed_filter(h);
  }

  h = autograd::relu(autograd::conv2d(h, conv3_w_, conv3_b_, config_.conv3_stride,
                                      config_.conv3_kernel / 2));
  result.features_l3 = h;
  if (config_.fixed_filter.placement == FilterPlacement::kAfterLayer3) {
    h = apply_fixed_filter(h);
  }

  result.logits = autograd::dense(autograd::flatten2d(h), fc_w_, fc_b_);
  return result;
}

Tensor LisaCnn::logits(const Tensor& x) const {
  // Inference only: with gradients off the forward builds no graph and the
  // convolution kernels may reuse per-thread scratch buffers.
  autograd::NoGradGuard no_grad;
  return forward(Variable::constant(x)).logits.value();
}

std::vector<int> LisaCnn::predict(const Tensor& x) const {
  return tensor::argmax_rows(logits(x));
}

std::vector<Variable> LisaCnn::parameters() const {
  std::vector<Variable> params = {conv1_w_, conv1_b_, conv2_w_, conv2_b_,
                                  conv3_w_, conv3_b_, fc_w_,    fc_b_};
  if (dw_weight_.defined()) params.push_back(dw_weight_);
  return params;
}

std::vector<std::pair<std::string, Variable>> LisaCnn::named_parameters() const {
  std::vector<std::pair<std::string, Variable>> named = {
      {"conv1.w", conv1_w_}, {"conv1.b", conv1_b_}, {"conv2.w", conv2_w_},
      {"conv2.b", conv2_b_}, {"conv3.w", conv3_w_}, {"conv3.b", conv3_b_},
      {"fc.w", fc_w_},       {"fc.b", fc_b_}};
  if (dw_weight_.defined()) named.emplace_back("depthwise.w", dw_weight_);
  return named;
}

void LisaCnn::copy_weights_from(const LisaCnn& other) {
  auto mine = named_parameters();
  const auto theirs = other.named_parameters();
  for (auto& [name, param] : mine) {
    for (const auto& [other_name, other_param] : theirs) {
      if (name == other_name) {
        if (param.shape() != other_param.shape()) {
          throw std::invalid_argument("copy_weights_from: shape mismatch for " + name);
        }
        param.mutable_value() = other_param.value().clone();
      }
    }
  }
}

LisaCnn LisaCnn::clone() const { return clone_with_config(config_); }

LisaCnn LisaCnn::clone_with_config(const LisaCnnConfig& config) const {
  LisaCnn copy(config);
  copy.copy_weights_from(*this);
  return copy;
}

void LisaCnn::save(const std::string& path) const { save_parameters(path, named_parameters()); }

void LisaCnn::load(const std::string& path) {
  auto named = named_parameters();
  load_parameters(path, named);
}

}  // namespace blurnet::nn
