#include "src/nn/optim.h"

#include <cmath>

namespace blurnet::nn {

Sgd::Sgd(std::vector<autograd::Variable> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value().shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    if (momentum_ != 0.0) {
      velocity_[i].scale_(static_cast<float>(momentum_));
      velocity_[i].add_(p.grad());
      p.mutable_value().add_scaled_(velocity_[i], static_cast<float>(-lr_));
    } else {
      p.mutable_value().add_scaled_(p.grad(), static_cast<float>(-lr_));
    }
  }
}

Adam::Adam(std::vector<autograd::Variable> params, double lr, double beta1, double beta2,
           double epsilon)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::reset_state() {
  t_ = 0;
  for (auto& m : m_) m.zero();
  for (auto& v : v_) v.zero();
}

void Adam::step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* w = p.mutable_value().data();
    const std::int64_t n = p.value().numel();
    for (std::int64_t j = 0; j < n; ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      const double m_hat = m[j] / bias1;
      const double v_hat = v[j] / bias2;
      w[j] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + epsilon_));
    }
  }
}

}  // namespace blurnet::nn
