// The road-sign classifier from the paper's setup (§II-D): three convolution
// layers plus a fully-connected layer, trained with Adam. Architecture knobs
// cover every model variant the evaluation needs:
//
//   * optional fixed blur on the *input* (Table I, "input filter k×k"),
//   * optional fixed blur on the *feature maps* after a chosen layer
//     (Table I "k×k filter on L1 maps"; supplementary A ablation),
//   * optional *learnable* depthwise filter layer after layer 1 whose weights
//     are trained with an L∞ penalty (Table II, "k×k conv").
//
// forward() exposes the intermediate feature maps so the regularized training
// objectives (TV / Tik_hf / Tik_pseudo) and the adaptive attacks can reach
// the first-layer activations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/autograd/ops.h"
#include "src/autograd/variable.h"
#include "src/signal/kernels.h"

namespace blurnet::nn {

enum class FilterPlacement { kNone, kInput, kAfterLayer1, kAfterLayer2, kAfterLayer3 };

struct FixedFilterSpec {
  FilterPlacement placement = FilterPlacement::kNone;
  int kernel = 0;  // odd size; 0 = disabled
  signal::KernelKind kind = signal::KernelKind::kBox;
};

struct LisaCnnConfig {
  int num_classes = 18;
  int image_size = 32;
  int in_channels = 3;
  int conv1_filters = 16;
  int conv2_filters = 32;
  int conv3_filters = 64;
  // conv1 5x5/s1 (keeps 32x32 first-layer maps so the filter defenses act on
  // spatially meaningful activations), conv2 5x5/s2, conv3 3x3/s2.
  int conv1_kernel = 5, conv1_stride = 1;
  int conv2_kernel = 5, conv2_stride = 2;
  int conv3_kernel = 3, conv3_stride = 2;

  /// Fixed (non-learnable) blur filter, Table I / ablation experiments.
  FixedFilterSpec fixed_filter;

  /// Learnable depthwise layer after layer 1 (0 = absent), Table II "k×k conv".
  int learnable_depthwise_kernel = 0;

  std::uint64_t init_seed = 7;

  /// Reject malformed configs with a descriptive std::invalid_argument
  /// (non-positive sizes/filters, even conv kernels, a bad depthwise kernel).
  /// Called by the LisaCnn constructor.
  void validate() const;
};

struct ForwardResult {
  autograd::Variable logits;        // [N, num_classes]
  autograd::Variable features_l1;   // post-ReLU conv1 maps, BEFORE any filter layer
  autograd::Variable features_l1_filtered;  // after fixed/learnable filter (== features_l1 if none)
  autograd::Variable features_l2;   // post-ReLU conv2 maps
  autograd::Variable features_l3;   // post-ReLU conv3 maps
};

class LisaCnn {
 public:
  explicit LisaCnn(LisaCnnConfig config);

  /// Full forward pass. `x` is an NCHW batch in [0,1].
  ForwardResult forward(const autograd::Variable& x) const;

  /// Convenience: logits for a constant input (no graph retained).
  tensor::Tensor logits(const tensor::Tensor& x) const;
  /// Predicted class per row.
  std::vector<int> predict(const tensor::Tensor& x) const;

  const LisaCnnConfig& config() const { return config_; }

  /// Trainable parameters (order is stable across runs).
  std::vector<autograd::Variable> parameters() const;
  /// Name → parameter pairs for checkpointing.
  std::vector<std::pair<std::string, autograd::Variable>> named_parameters() const;

  /// The learnable depthwise weights (undefined Variable if absent).
  autograd::Variable depthwise_weights() const { return dw_weight_; }

  /// Copy all matching-name parameters from another model (used to transfer
  /// trained weights into a differently-filtered architecture, Table I).
  void copy_weights_from(const LisaCnn& other);

  /// Deep copy: same architecture, independently-owned parameter storage.
  /// (The copy constructor shares Variable handles; clone() does not.)
  LisaCnn clone() const;
  /// Table I weight transfer as a constructor: build `config`'s architecture
  /// and copy every matching-name parameter from this model. Parameters that
  /// only exist in the new architecture (e.g. a learnable depthwise layer)
  /// keep their deterministic seed initialization.
  LisaCnn clone_with_config(const LisaCnnConfig& config) const;

  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  autograd::Variable apply_fixed_filter(const autograd::Variable& x) const;

  LisaCnnConfig config_;
  autograd::Variable conv1_w_, conv1_b_;
  autograd::Variable conv2_w_, conv2_b_;
  autograd::Variable conv3_w_, conv3_b_;
  autograd::Variable fc_w_, fc_b_;
  autograd::Variable dw_weight_;         // learnable depthwise (optional)
  tensor::Tensor fixed_kernel_;          // fixed blur kernel (optional)
  std::int64_t flat_features_ = 0;
};

}  // namespace blurnet::nn
