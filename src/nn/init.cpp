#include "src/nn/init.h"

#include <cmath>

namespace blurnet::nn {

tensor::Tensor he_normal(tensor::Shape shape, std::int64_t fan_in, util::Rng& rng) {
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  return tensor::Tensor::randn(std::move(shape), rng, 0.0f, static_cast<float>(stddev));
}

tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                              util::Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return tensor::Tensor::rand_uniform(std::move(shape), rng, static_cast<float>(-a),
                                      static_cast<float>(a));
}

tensor::Tensor identity_depthwise(std::int64_t channels, int kernel, double noise,
                                  util::Rng& rng) {
  tensor::Tensor w(tensor::Shape{channels, kernel, kernel});
  const int center = kernel / 2;
  for (std::int64_t c = 0; c < channels; ++c) {
    for (int y = 0; y < kernel; ++y) {
      for (int x = 0; x < kernel; ++x) {
        const bool is_center = (y == center && x == center);
        w[(c * kernel + y) * kernel + x] =
            static_cast<float>((is_center ? 1.0 : 0.0) + rng.normal(0.0, noise));
      }
    }
  }
  return w;
}

}  // namespace blurnet::nn
