// Named-parameter checkpoint format:
//   magic "BLNT" | u32 version | u32 count | count × (name, shape, f32 data)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/autograd/variable.h"

namespace blurnet::nn {

void save_parameters(const std::string& path,
                     const std::vector<std::pair<std::string, autograd::Variable>>& params);

/// Load into existing parameters (matched by name; shapes must agree; every
/// parameter in `params` must be present in the file).
void load_parameters(const std::string& path,
                     std::vector<std::pair<std::string, autograd::Variable>>& params);

/// Same, from an in-memory checkpoint image (fuzzing, already-loaded bytes).
/// Every malformed input — truncation, hostile counts, bad magic — throws
/// std::runtime_error without unbounded allocation.
void load_parameters(const std::uint8_t* data, std::size_t size,
                     std::vector<std::pair<std::string, autograd::Variable>>& params);

}  // namespace blurnet::nn
