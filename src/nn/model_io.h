// Named-parameter checkpoint format:
//   magic "BLNT" | u32 version | u32 count | count × (name, shape, f32 data)
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/autograd/variable.h"

namespace blurnet::nn {

void save_parameters(const std::string& path,
                     const std::vector<std::pair<std::string, autograd::Variable>>& params);

/// Load into existing parameters (matched by name; shapes must agree; every
/// parameter in `params` must be present in the file).
void load_parameters(const std::string& path,
                     std::vector<std::pair<std::string, autograd::Variable>>& params);

}  // namespace blurnet::nn
