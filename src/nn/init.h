// Weight initialization schemes.
#pragma once

#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace blurnet::nn {

/// He/Kaiming normal: N(0, sqrt(2/fan_in)). The standard choice for ReLU nets.
tensor::Tensor he_normal(tensor::Shape shape, std::int64_t fan_in, util::Rng& rng);

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6/(fan_in+fan_out)).
tensor::Tensor xavier_uniform(tensor::Shape shape, std::int64_t fan_in, std::int64_t fan_out,
                              util::Rng& rng);

/// Identity-plus-noise depthwise kernel stack [C,k,k]: centre tap 1, other
/// taps N(0, noise). Used to initialize the learnable filter layer so the
/// network starts as a no-op filter (paper §IV-A).
tensor::Tensor identity_depthwise(std::int64_t channels, int kernel, double noise,
                                  util::Rng& rng);

}  // namespace blurnet::nn
